"""Performance benchmark of the sweep-execution layer — emits BENCH_perf.json.

Measures the three optimizations this layer stacks on the paper's sweeps,
each against the serial scalar oracle *on the same machine*:

* ``fig9_sweep``   — the Fig. 9 grid, serial scalar vs parallel scalar
  (must be bit-identical) vs parallel+vectorized batch stepper (must agree
  to 1e-9 relative).
* ``crossval``     — the analytic-vs-DES differential matrix, serial vs
  parallel (reports must be structurally identical).
* ``cache``        — cold vs warm Fig. 9 through the on-disk result cache
  (warm must serve >= 90% of lookups from disk).
* ``des_engine``   — raw kernel throughput, two ways: the headline batched
  device-completion storm (``Simulator.schedule_batch`` through the
  calendar queue, gated at >= 5M events/s by ``--des-floor``) and the
  legacy relay-heavy scalar mix (event pooling + O(1) barriers, its own
  ``--des-scalar-floor``), both under a NullSink telemetry.
* ``des_feasibility`` — the "largest DES-feasible machine" tracker: runs
  the grid-scale crossval cells (distributed LU on 2x2..8x8 grids; 16x16
  in full mode) and records the largest rank count that verifies inside
  the wall-clock budget.  ``--check`` pins the floor at 64 ranks.
* ``telemetry_overhead`` — an instrumented fig9 sweep three ways (no
  telemetry, NullSink, streaming run ledger); the streaming measurement is
  recorded *into the ledger it creates*, and ``--check`` gates the
  streaming sink at <=10% wall-time over the NullSink run.

Every run also appends one flattened line to
``benchmarks/BENCH_history.jsonl`` (disable with ``--no-history``) — the
bench *trajectory* that ``python -m repro.obs regress`` compares against,
instead of the single overwritten ``BENCH_perf.json`` snapshot.

Usage::

    python benchmarks/bench_perf.py --quick --check
    python benchmarks/bench_perf.py --quick --profile
    python benchmarks/bench_perf.py --out benchmarks/out/BENCH_perf.json

``--profile`` re-runs both engine microbenches under cProfile and writes
``BENCH_profile.txt`` (top-30 by cumulative and by tottime) plus the raw
``BENCH_profile.prof`` next to the ``--out`` report — the profile-guided
loop for hot-path work (see docs/performance.md).

``--check`` turns the correctness comparisons into hard assertions (the CI
bench-smoke lane runs it); speedups are reported, never asserted — they
depend on the core count of the machine running the benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.bench.linpack_sweep import _fig9_values
from repro.exec import ExecutionPolicy, code_version, use
from repro.hpl.driver import CONFIGURATIONS, Configuration
from repro.obs import history as bench_history
from repro.sim import Simulator
from repro.sim.resources import Resource, Store
from repro.util.io import atomic_write_text
from repro.verify.differential import MATRIX, run_matrix

DEFAULT_OUT = Path(__file__).parent / "out" / "BENCH_perf.json"

QUICK_SIZES = (5750, 11500)
FULL_SIZES = (5750, 11500, 23000, 34500, 46000)
SEED = 7

#: Headline engine-microbench floor (events/s) asserted under --check: the
#: batched device-completion storm through the calendar queue.  Local runs
#: measure ~50M+; the 5M floor leaves an order of magnitude for slow shared
#: runners while still pinning the 10x-the-DES-core optimization.
DEFAULT_DES_FLOOR = 5_000_000.0

#: Floor for the legacy scalar mix (one generator resume per event).
#: Conservative: local runs measure ~550k+; shared CI runners are slower.
DEFAULT_DES_SCALAR_FLOOR = 150_000.0

#: A feasibility cell must verify inside this wall budget to count toward
#: the "largest DES-feasible machine" tracker.
FEASIBILITY_BUDGET_S = 60.0

#: --check pins the tracker here: the crossval matrix must keep >= one
#: 64-rank (8x8 grid) DES cell feasible.
FEASIBILITY_FLOOR_RANKS = 64

#: The streaming sink may add at most this fraction of wall time over the
#: NullSink-instrumented sweep (plus a small absolute slack for sub-second
#: timing noise).
STREAMING_OVERHEAD_LIMIT = 0.10
STREAMING_OVERHEAD_SLACK_S = 0.25


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_fig9(sizes, jobs: int) -> dict:
    """Serial scalar vs parallel scalar vs parallel+vectorized Fig. 9 grid."""
    configs = tuple(Configuration.parse(c) for c in CONFIGURATIONS)

    def sweep(policy):
        with use(policy):
            return _fig9_values(configs, sizes, None, SEED)

    serial, serial_s = _timed(lambda: sweep(ExecutionPolicy(jobs=1)))
    parallel, parallel_s = _timed(lambda: sweep(ExecutionPolicy(jobs=jobs)))
    vector, vector_s = _timed(
        lambda: sweep(ExecutionPolicy(jobs=jobs, vectorize=True))
    )

    flat = [(str(c), n) for c in configs for n in sizes]
    bit_identical = all(serial[c][n] == parallel[c][n] for c, n in flat)
    max_rel = max(
        abs(vector[c][n] - serial[c][n]) / abs(serial[c][n]) for c, n in flat
    )
    return {
        "points": len(flat),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "vectorized_seconds": vector_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "vectorized_speedup": serial_s / vector_s if vector_s > 0 else None,
        "parallel_bit_identical": bit_identical,
        "vectorized_max_rel_error": max_rel,
    }


def bench_crossval(quick: bool, jobs: int) -> dict:
    """The differential matrix, serial vs parallel, identical reports."""
    cases = MATRIX[:2] if quick else MATRIX

    def matrix(policy):
        with use(policy):
            return run_matrix(cases)

    serial, serial_s = _timed(lambda: matrix(ExecutionPolicy(jobs=1)))
    parallel, parallel_s = _timed(lambda: matrix(ExecutionPolicy(jobs=jobs)))
    return {
        "cases": len(cases),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "reports_identical": serial.to_dict() == parallel.to_dict(),
        "serial_ok": serial.ok,
        "parallel_ok": parallel.ok,
    }


def bench_cache(sizes, jobs: int) -> dict:
    """Cold vs warm Fig. 9 through a fresh on-disk result cache."""
    configs = tuple(Configuration.parse(c) for c in CONFIGURATIONS)
    with tempfile.TemporaryDirectory(prefix="bench-perf-cache-") as tmp:
        cold_policy = ExecutionPolicy(jobs=jobs, cache=True, cache_dir=Path(tmp))
        warm_policy = ExecutionPolicy(jobs=jobs, cache=True, cache_dir=Path(tmp))

        def sweep(policy):
            with use(policy):
                return _fig9_values(configs, sizes, None, SEED)

        cold, cold_s = _timed(lambda: sweep(cold_policy))
        warm, warm_s = _timed(lambda: sweep(warm_policy))
    return {
        "points": len(configs) * len(sizes),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else None,
        "warm_hits": warm_policy.stats.cache_hits,
        "warm_misses": warm_policy.stats.cache_misses,
        "warm_hit_rate": warm_policy.stats.hit_rate,
        "values_identical": cold == warm,
    }


def _producer(store, n):
    for i in range(n):
        yield store.put(i)


def _consumer(store, n, done):
    for _ in range(n):
        yield store.get()
        yield done  # already processed -> exercises the pooled relay path


def _worker(sim, res, n):
    for _ in range(n):
        req = res.request()
        yield req
        yield sim.timeout(0.001)
        res.release(req)


def bench_telemetry_overhead(sizes) -> dict:
    """Instrumented fig9 sweep: bare vs NullSink vs streaming run ledger.

    The streaming run records into a real ledger under
    ``benchmarks/out/runs/`` and the measured overhead is written into that
    ledger's own summary — the flight recorder carries its own cost.
    """
    configs = (Configuration.parse("acmlg_both"),)

    def sweep(telemetry):
        with obs.use(telemetry):
            return _fig9_values(configs, sizes, None, SEED)

    bare, bare_s = _timed(lambda: sweep(None))
    null, null_s = _timed(lambda: sweep(obs.Telemetry(sink=obs.NULL_SINK)))
    ledger = obs.RunLedger.open(
        "bench-perf-overhead", config={"sizes": list(sizes)}
    )
    stream, stream_s = _timed(lambda: sweep(ledger.telemetry))
    streaming_overhead = stream_s / null_s - 1.0 if null_s > 0 else 0.0
    null_overhead = null_s / bare_s - 1.0 if bare_s > 0 else 0.0
    summary = {
        "bare_seconds": bare_s,
        "null_sink_seconds": null_s,
        "streaming_seconds": stream_s,
        "null_overhead": null_overhead,
        "streaming_overhead": streaming_overhead,
    }
    ledger.finish(summary)
    flat = [(str(c), n) for c in configs for n in sizes]
    return {
        **summary,
        "run_id": ledger.run_id,
        "records_streamed": ledger.sink.records_written,
        "values_identical": all(
            bare[c][n] == null[c][n] == stream[c][n] for c, n in flat
        ),
    }


def _des_scalar(quick: bool) -> dict:
    """The relay-heavy scalar mix: one generator resume per event."""
    n = 5000 if quick else 20000
    sim = Simulator()
    done = sim.timeout(0.0)
    store = Store(sim)
    res = Resource(sim, capacity=2)
    for _ in range(4):
        sim.process(_producer(store, n))
        sim.process(_consumer(store, n, done))
        sim.process(_worker(sim, res, n // 4))
    with obs.use(obs.Telemetry(sink=obs.NULL_SINK)):
        _, wall = _timed(sim.run)
    return {
        "events_processed": sim.events_processed,
        "wall_seconds": wall,
        "events_per_second": sim.events_processed / wall if wall > 0 else None,
    }


def _des_batched(quick: bool) -> dict:
    """The headline batched storm: same-timestamp device completions
    coalesced through ``Simulator.schedule_batch`` and the calendar queue."""
    n_events = 1_000_000 if quick else 4_000_000
    n_stamps = 499  # distinct completion instants per storm
    import numpy as np

    rng = np.random.default_rng(SEED)
    delays = rng.choice(np.linspace(1e-6, 1.0, n_stamps), size=n_events)
    sim = Simulator()

    def storm():
        sim.schedule_batch(delays)
        sim.run()

    with obs.use(obs.Telemetry(sink=obs.NULL_SINK)):
        _, wall = _timed(storm)
    return {
        "events_processed": sim.events_processed,
        "batch_entries": n_stamps,
        "wall_seconds": wall,
        "events_per_second": sim.events_processed / wall if wall > 0 else None,
    }


def bench_des(quick: bool) -> dict:
    """Kernel throughput: batched headline + legacy scalar mix.

    Both run under an ambient NullSink telemetry — the floor gates assert
    the zero-cost discipline holds with the hooks present but disabled.
    ``events_per_second`` (the history-tracked headline) is the batched
    storm; the scalar mix keeps its own tracked metric and floor.
    """
    batched = _des_batched(quick)
    scalar = _des_scalar(quick)
    return {
        "events_processed": batched["events_processed"],
        "batch_entries": batched["batch_entries"],
        "wall_seconds": batched["wall_seconds"],
        "events_per_second": batched["events_per_second"],
        "scalar_events_processed": scalar["events_processed"],
        "scalar_wall_seconds": scalar["wall_seconds"],
        "scalar_events_per_second": scalar["events_per_second"],
    }


def bench_des_feasibility(quick: bool) -> dict:
    """The "largest DES-feasible machine" tracker.

    Runs the grid-scale crossval cells (numeric distributed LU over
    simulated MPI, one FlopsEngine per rank) and records, per grid, the
    wall cost and kernel throughput — and overall, the largest rank count
    whose cell verifies inside :data:`FEASIBILITY_BUDGET_S`.
    """
    from repro.verify.gridcases import GRID_MATRIX, GRID_MATRIX_SLOW, run_grid_case

    cases = [c for c in GRID_MATRIX if c.bcast_algo == "binomial"]
    if not quick:
        cases += [c for c in GRID_MATRIX_SLOW if c.bcast_algo == "binomial"]
    cells = []
    largest = 0
    for case in cases:
        outcome, wall = _timed(lambda case=case: run_grid_case(case))
        events = outcome.sim_stats.events_processed
        feasible = outcome.ok and wall <= FEASIBILITY_BUDGET_S
        cells.append({
            "name": case.name,
            "ranks": case.ranks,
            "n": case.n,
            "events_processed": events,
            "wall_seconds": wall,
            "events_per_second": events / wall if wall > 0 else None,
            "verified": outcome.ok,
            "feasible": feasible,
        })
        if feasible:
            largest = max(largest, case.ranks)
    return {
        "budget_seconds": FEASIBILITY_BUDGET_S,
        "cells": cells,
        "largest_feasible_ranks": largest,
    }


def run_benchmarks(quick: bool, jobs: int) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    return {
        "meta": {
            "quick": quick,
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "code_version": code_version(),
        },
        "fig9_sweep": bench_fig9(sizes, jobs),
        "crossval": bench_crossval(quick, jobs),
        "cache": bench_cache(sizes, jobs),
        "des_engine": bench_des(quick),
        "des_feasibility": bench_des_feasibility(quick),
        "telemetry_overhead": bench_telemetry_overhead(QUICK_SIZES),
    }


def check(
    report: dict,
    des_floor: float = DEFAULT_DES_FLOOR,
    des_scalar_floor: float = DEFAULT_DES_SCALAR_FLOOR,
) -> list[str]:
    """The correctness gates (never the cross-machine speedups) as failures.

    The two throughput-ish gates — the DES floor and the streaming-sink
    overhead cap — are deliberately loose: they catch order-of-magnitude
    regressions and instrumentation on the hot path, not runner noise.
    """
    failures = []
    if not report["fig9_sweep"]["parallel_bit_identical"]:
        failures.append("fig9: parallel results are not bit-identical to serial")
    if report["fig9_sweep"]["vectorized_max_rel_error"] > 1e-9:
        failures.append(
            "fig9: vectorized stepper drifted "
            f"{report['fig9_sweep']['vectorized_max_rel_error']:.3e} > 1e-9 "
            "relative from the scalar oracle"
        )
    if not report["crossval"]["reports_identical"]:
        failures.append("crossval: parallel report differs from serial")
    if report["cache"]["warm_hit_rate"] < 0.9:
        failures.append(
            f"cache: warm hit rate {report['cache']['warm_hit_rate']:.0%} < 90%"
        )
    if not report["cache"]["values_identical"]:
        failures.append("cache: warm values differ from cold values")
    eps = report["des_engine"]["events_per_second"] or 0.0
    if eps < des_floor:
        failures.append(
            f"des: batched engine microbench {eps:,.0f} events/s fell below "
            f"the {des_floor:,.0f} floor (NullSink telemetry active)"
        )
    scalar_eps = report["des_engine"]["scalar_events_per_second"] or 0.0
    if scalar_eps < des_scalar_floor:
        failures.append(
            f"des: scalar engine microbench {scalar_eps:,.0f} events/s fell "
            f"below the {des_scalar_floor:,.0f} floor (NullSink telemetry active)"
        )
    feas = report["des_feasibility"]
    if feas["largest_feasible_ranks"] < FEASIBILITY_FLOOR_RANKS:
        failures.append(
            "des_feasibility: largest DES-feasible machine is "
            f"{feas['largest_feasible_ranks']} ranks, below the "
            f"{FEASIBILITY_FLOOR_RANKS}-rank floor (8x8 grid)"
        )
    unverified = [c["name"] for c in feas["cells"] if not c["verified"]]
    if unverified:
        failures.append(
            f"des_feasibility: grid cells failed verification: {', '.join(unverified)}"
        )
    overhead = report["telemetry_overhead"]
    limit = (
        overhead["null_sink_seconds"] * (1.0 + STREAMING_OVERHEAD_LIMIT)
        + STREAMING_OVERHEAD_SLACK_S
    )
    if overhead["streaming_seconds"] > limit:
        failures.append(
            "telemetry: streaming sink added "
            f"{overhead['streaming_overhead']:.1%} wall time "
            f"(> {STREAMING_OVERHEAD_LIMIT:.0%} cap) on the instrumented fig9 sweep"
        )
    if not overhead["values_identical"]:
        failures.append("telemetry: instrumented sweep values differ from bare run")
    return failures


def write_profile(out: Path, quick: bool) -> tuple[Path, Path]:
    """Profile both engine microbenches; write pstats text + raw dump.

    The text report lists the top 30 functions by cumulative and by own
    time — the reading order for hot-path work: own time names the loop to
    attack, cumulative names the caller that makes it hot.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _des_batched(quick)
    _des_scalar(quick)
    profiler.disable()
    prof_path = out.parent / "BENCH_profile.prof"
    txt_path = out.parent / "BENCH_profile.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    profiler.dump_stats(prof_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write("== engine microbench: top 30 by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(30)
    buffer.write("\n== engine microbench: top 30 by own (tot) time ==\n")
    stats.sort_stats("tottime").print_stats(30)
    atomic_write_text(txt_path, buffer.getvalue())
    return prof_path, txt_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grid (CI smoke)")
    parser.add_argument(
        "--check", action="store_true", help="assert the correctness gates"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the engine microbenches; writes BENCH_profile.{txt,prof} "
        "next to --out",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: all cores)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help=f"output path (default {DEFAULT_OUT})"
    )
    parser.add_argument(
        "--des-floor",
        type=float,
        default=DEFAULT_DES_FLOOR,
        help="events/s floor for the batched engine microbench "
        f"(default {DEFAULT_DES_FLOOR:,.0f})",
    )
    parser.add_argument(
        "--des-scalar-floor",
        type=float,
        default=DEFAULT_DES_SCALAR_FLOOR,
        help="events/s floor for the scalar engine microbench "
        f"(default {DEFAULT_DES_SCALAR_FLOOR:,.0f})",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=bench_history.DEFAULT_HISTORY_PATH,
        help=f"bench trajectory file (default {bench_history.DEFAULT_HISTORY_PATH})",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the bench trajectory",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    report = run_benchmarks(args.quick, jobs)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        entry = bench_history.entry_from_report(report, wall_unix=time.time())
        bench_history.append_entry(entry, args.history)
        print(f"history: appended entry #{len(bench_history.load_history(args.history))} "
              f"to {args.history}")

    f9, cv, ca, de = (
        report["fig9_sweep"], report["crossval"], report["cache"], report["des_engine"]
    )
    print(f"fig9     serial {f9['serial_seconds']:.2f}s  "
          f"parallel {f9['parallel_seconds']:.2f}s ({f9['parallel_speedup']:.2f}x, "
          f"bit-identical={f9['parallel_bit_identical']})  "
          f"vectorized {f9['vectorized_seconds']:.2f}s ({f9['vectorized_speedup']:.2f}x, "
          f"max rel {f9['vectorized_max_rel_error']:.1e})")
    print(f"crossval serial {cv['serial_seconds']:.2f}s  "
          f"parallel {cv['parallel_seconds']:.2f}s ({cv['parallel_speedup']:.2f}x, "
          f"identical={cv['reports_identical']})")
    print(f"cache    cold {ca['cold_seconds']:.2f}s  warm {ca['warm_seconds']:.2f}s "
          f"({ca['warm_speedup']:.1f}x, {ca['warm_hit_rate']:.0%} hit)")
    print(f"des      batched {de['events_processed']} events at "
          f"{de['events_per_second']:,.0f}/s ({de['batch_entries']} calendar entries)  "
          f"scalar {de['scalar_events_processed']} at "
          f"{de['scalar_events_per_second']:,.0f}/s")
    fe = report["des_feasibility"]
    cell_text = "  ".join(
        f"{c['ranks']}r:{c['wall_seconds']:.1f}s{'' if c['feasible'] else '!'}"
        for c in fe["cells"]
    )
    print(f"feas     largest DES-feasible machine {fe['largest_feasible_ranks']} ranks "
          f"(budget {fe['budget_seconds']:.0f}s)  [{cell_text}]")
    to = report["telemetry_overhead"]
    print(f"obs      bare {to['bare_seconds']:.2f}s  null {to['null_sink_seconds']:.2f}s "
          f"({to['null_overhead']:+.1%})  streaming {to['streaming_seconds']:.2f}s "
          f"({to['streaming_overhead']:+.1%}, {to['records_streamed']} records, "
          f"ledger {to['run_id']})")
    print(f"report written to {args.out}")

    if args.profile:
        prof_path, txt_path = write_profile(args.out, args.quick)
        print(f"profile written to {txt_path} (raw: {prof_path})")

    if args.check:
        failures = check(
            report,
            des_floor=args.des_floor,
            des_scalar_floor=args.des_scalar_floor,
        )
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
