"""Fig. 13: performance over the progress of the full-configuration run.

Paper: still 604.74 TFLOPS at 97.17% of progress, then a drop of ~41.6
TFLOPS over the final 2.83% to the 563.1 TFLOPS result, "because the GPU is
less effective when the matrix size is relatively small".
"""

from repro.bench import fig13_progress


def test_fig13_progress(benchmark, save_report):
    data = benchmark.pedantic(fig13_progress, rounds=1, iterations=1)
    save_report("fig13_progress", data.render())

    at_9717 = data.summary["at 97.17% progress (paper 604.74 TFLOPS)"]
    final = data.summary["final (paper 563.1 TFLOPS)"]
    drop = data.summary["endgame drop (paper ~41.6 TFLOPS)"]

    assert 520 < at_9717 < 680
    assert 500 < final < 640
    assert drop > 5.0, "the endgame must visibly drag the average down"
    assert at_9717 > final
