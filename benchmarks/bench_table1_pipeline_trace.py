"""Table I: the software pipeline's CT/NT schedule, shifted in time."""

from repro.bench import table1_trace
from repro.core.pipeline import SoftwarePipeline
from repro.core.taskqueue import build_task_queue
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator, Tracer
from repro.sim.gantt import render_tracer
from repro.util.units import dgemm_flops


def test_table1_pipeline_trace(benchmark, save_report):
    trace = benchmark.pedantic(table1_trace, rounds=1, iterations=1)
    save_report("table1_pipeline_trace", trace.render())
    # The paper's bounce-corner-turn order and the Fig. 7 overlap must hold.
    assert trace.task_order == ["T0", "T1", "T3", "T2"]
    assert trace.overlap_confirmed
    assert trace.duration > 0


def test_fig7_overlap_gantt(benchmark, save_report):
    """Fig. 7 as an ASCII Gantt: inputs hiding under the previous EO stage."""

    def run():
        n, k = 16384, 1216
        sim = Simulator()
        element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
        tracer = Tracer(sim)
        queue = build_task_queue(n, n, k, beta_nonzero=False, gpu_memory_bytes=1e9)
        executor = SoftwarePipeline(element, jitter=False, tracer=tracer)
        rate = element.gpu.kernel_rate(dgemm_flops(n, n, k))
        sim.run(until=sim.process(executor.execute(queue, rate)))
        return tracer

    tracer = benchmark.pedantic(run, rounds=1, iterations=1)
    gantt = render_tracer(tracer, width=64)
    save_report("fig7_overlap_gantt", gantt)
    eo0 = tracer.intervals(actor="T0", phase="eo")[0]
    in1 = tracer.intervals(actor="T1", phase="input")[0]
    assert eo0.overlaps(in1)
