"""The paper's headline numbers, all in one report.

196.7 GFLOPS / 70.1% on a single compute element; 3.3x over the vendor
library; 5.49x over host-only; 0.563 PFLOPS on the full configuration;
379.24 MFLOPS/W.
"""

from repro.hpl.driver import run_linpack, run_linpack_element
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.power import TIANHE1_POWER
from repro.machine.presets import tianhe1_cluster
from repro.model import calibration as cal
from repro.util.tables import TextTable


def headline_numbers() -> TextTable:
    table = TextTable(
        ["metric", "paper", "reproduced", "ratio"],
        title="Headline anchors: paper vs this reproduction",
    )

    def row(name, paper, ours, fmt="{:.1f}"):
        table.add_row(name, fmt.format(paper), fmt.format(ours), f"{ours / paper:.3f}")
        return ours

    best = run_linpack_element("acmlg_both", 46000).gflops
    vendor = run_linpack_element("acmlg", 46000).gflops
    cpu = run_linpack_element("cpu", 46000).gflops
    row("single element Linpack (GFLOPS)", 196.7, best)
    row("  fraction of element peak", 0.701, best * 1e9 / cal.ELEMENT_PEAK, "{:.3f}")
    row("  speedup over ACML-GPU", 3.3, best / vendor, "{:.2f}")
    row("  speedup over CPU-only", 5.49, best / cpu, "{:.2f}")

    full_cluster = Cluster(tianhe1_cluster(cabinets=80), seed=2009)
    full = run_linpack("acmlg_both", cal.FULL_SYSTEM_N, full_cluster, ProcessGrid(64, 80))
    row("full system Linpack (TFLOPS)", 563.1, full.tflops)
    green = TIANHE1_POWER.mflops_per_watt(full.gflops * 1e9, cabinets=80)
    row("Green500 (MFLOPS/W)", 379.24, green)
    return table


def test_headline_numbers(benchmark, save_report):
    table = benchmark.pedantic(headline_numbers, rounds=1, iterations=1)
    save_report("headline", table.render())
    # Every ratio column must be within the modelling band.
    for row in table.rows:
        ratio = float(row[-1])
        assert 0.70 < ratio < 1.30, f"{row[0]} off by more than 30%: {row}"
