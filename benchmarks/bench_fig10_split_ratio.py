"""Fig. 10: the GPU split ratio stored in database_g versus workload.

The paper's observations: the initial value is 0.889 (the peak ratio);
stored values differ strongly from it below ~1300 Gflop and settle with
little fluctuation above.
"""

from repro.bench import fig10_split_ratio


def test_fig10_split_ratio(benchmark, save_report):
    data = benchmark.pedantic(fig10_split_ratio, rounds=1, iterations=1)
    save_report("fig10_split_ratio", data.render())

    assert data.summary["initial GSplit (paper 0.889)"] == __import__("pytest").approx(
        0.889, abs=0.002
    )
    stored = data.series["stored GSplit"]
    small = [v for w, v in stored if w < 1300]
    large = [v for w, v in stored if w >= 1300]
    assert small and large, "the run must cross the 1300 Gflop knee"
    # Below the knee the split departs far from 0.889...
    assert min(small) < 0.70
    # ...and above it it settles close to (slightly below) the initial value.
    assert all(0.80 < v < 0.95 for v in large)
    spread_small = data.summary["split spread below 1300 Gflop (max-min)"]
    spread_large = data.summary["split spread above 1300 Gflop (max-min)"]
    assert spread_small > 2 * spread_large
