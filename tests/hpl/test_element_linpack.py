"""Tests for the event-driven single-element Linpack."""

import pytest

from repro.machine.variability import NO_VARIABILITY
from repro.session import Scenario, run as run_scenario
from repro.util.units import lu_flops
from tests.conftest import build_linpack_runner as make_runner


class TestBasics:
    def test_flops_accounting(self):
        runner = make_runner(n_for_bins=6000)
        result = runner.run_to_completion(6000)
        assert result.flops == lu_flops(6000)
        assert result.gflops > 0

    def test_steps_collected(self):
        runner = make_runner(n_for_bins=6000)
        result = runner.run_to_completion(6000, collect_steps=True)
        assert len(result.steps) == -(-6000 // 1216)
        assert result.steps[-1].trailing == 0
        assert sum(s.step_time for s in result.steps) <= result.elapsed

    def test_performance_grows_with_n(self):
        runner = make_runner()
        small = runner.run_to_completion(6000).gflops
        big = runner.run_to_completion(23000).gflops
        assert big > small

    def test_second_run_not_slower(self):
        """The warmed database must help (the paper's second-run protocol)."""
        runner = make_runner(n_for_bins=12000)
        first = runner.run_to_completion(12000).gflops
        second = runner.run_to_completion(12000).gflops
        assert second >= first * 0.999

    def test_lookahead_helps(self):
        with_la = make_runner(lookahead=True).run_to_completion(12000).gflops
        without = make_runner(lookahead=False).run_to_completion(12000).gflops
        assert with_la > without

    def test_pipelined_beats_sync(self):
        pipe = make_runner(pipelined=True).run_to_completion(18000).gflops
        sync = make_runner(pipelined=False).run_to_completion(18000).gflops
        assert pipe > sync

    def test_endgame_splits_back_off(self):
        runner = make_runner(n_for_bins=12000)
        runner.run_to_completion(12000)  # warm the databases
        result = runner.run_to_completion(12000, collect_steps=True)
        splits = [s.gsplit for s in result.steps if s.trailing > 0]
        assert splits[0] > 0.8
        assert splits[-1] < splits[0]


class TestCrossValidation:
    """The DES Linpack and the analytic stepper must tell the same story."""

    @pytest.mark.parametrize("n", [12000, 23000])
    def test_within_model_band(self, n):
        runner = make_runner(n_for_bins=n)
        runner.run_to_completion(n)  # warm databases (second-run protocol)
        des = runner.run_to_completion(n).gflops
        analytic = run_scenario(
            Scenario(scheduler="acmlg_both", n=n, variability=NO_VARIABILITY)
        ).gflops
        # The analytic stepper assumes converged splits and folds DTRSM into
        # the update's effective rate, so it sits above the exact DES run;
        # the gap closes with N (0.70 at 12k, 0.90 at 46k).
        assert 0.62 < des / analytic <= 1.02

    def test_configuration_ordering_agrees(self):
        n = 18000
        des = {}
        for kind in ("adaptive", "gpu_only"):
            runner = make_runner(kind, n_for_bins=n)
            runner.run_to_completion(n)
            des[kind] = runner.run_to_completion(n).gflops
        assert des["adaptive"] > des["gpu_only"]

    def test_paper_headline_anchor(self):
        """The full-fidelity DES run lands on the paper's 196.7 GFLOPS."""
        runner = make_runner(n_for_bins=46000)
        runner.run_to_completion(46000)
        result = runner.run_to_completion(46000)
        assert result.gflops == pytest.approx(196.7, rel=0.05)
