"""Property-based tests for the distributed LU (random shapes and grids)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.dgetrf import dgetf2
from repro.hpl.dist import DistributedLU, collect_matrix, distribute_matrix
from repro.hpl.grid import ProcessGrid
from repro.mpi.comm import SimMPI
from repro.sim import Simulator


@given(
    n=st.integers(4, 40),
    nb=st.integers(1, 12),
    p=st.integers(1, 3),
    q=st.integers(1, 3),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_distributed_lu_matches_serial(n, nb, p, q, seed):
    """For any (n, nb, P, Q): identical factors and pivots to serial dgetf2."""
    sim = Simulator()
    grid = ProcessGrid(p, q)
    world = SimMPI(sim, grid.size, None)
    lu = DistributedLU(sim, grid, nb, world)
    a = np.random.default_rng(seed).standard_normal((n, n))
    result = lu.factor(a)
    serial = a.copy()
    serial_piv = dgetf2(serial)
    assert np.array_equal(result.piv, serial_piv)
    assert np.allclose(collect_matrix(grid, result.locals_, n, n, nb), serial, atol=1e-8)


@given(
    rows=st.integers(1, 30),
    cols=st.integers(1, 30),
    nb=st.integers(1, 10),
    p=st.integers(1, 4),
    q=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_distribute_collect_roundtrip(rows, cols, nb, p, q, seed):
    grid = ProcessGrid(p, q)
    a = np.random.default_rng(seed).standard_normal((rows, cols))
    locals_ = distribute_matrix(grid, a, nb)
    assert np.array_equal(collect_matrix(grid, locals_, rows, cols, nb), a)
    total = sum(loc.size for loc in locals_)
    assert total == rows * cols


@given(
    n=st.integers(4, 30),
    nb=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_property_ring_and_binomial_bcast_equivalent(n, nb, seed):
    """The panel broadcast algorithm must not change the mathematics."""
    results = {}
    for algorithm in ("binomial", "ring"):
        sim = Simulator()
        grid = ProcessGrid(2, 2)
        world = SimMPI(sim, grid.size, None)
        lu = DistributedLU(sim, grid, nb, world, bcast_algorithm=algorithm)
        a = np.random.default_rng(seed).standard_normal((n, n))
        result = lu.factor(a)
        results[algorithm] = collect_matrix(grid, result.locals_, n, n, nb)
    assert np.allclose(results["binomial"], results["ring"], atol=1e-12)
