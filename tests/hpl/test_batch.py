"""The vectorized batch stepper vs the scalar oracle (<= 1e-9 relative)."""

from __future__ import annotations

import pytest

from repro.hpl.batch import batch_linpack, run_batch
from repro.hpl.driver import CONFIGURATIONS, Configuration, single_element_cluster
from repro.hpl.grid import ProcessGrid
from repro.session import Scenario, run

SIZES = (5750, 11500, 23000)
SEED = 7
TOL = 1e-9


def _scalar_gflops(configuration, n, seed=SEED, grid=(1, 1)):
    return run(
        Scenario(scheduler=configuration, n=n, seed=seed, grid=grid)
    ).gflops


@pytest.mark.parametrize("configuration", sorted(CONFIGURATIONS))
def test_batch_matches_scalar_every_configuration(configuration):
    cluster = single_element_cluster()
    results = batch_linpack(configuration, SIZES, cluster, ProcessGrid(1, 1), seed=SEED)
    assert len(results) == len(SIZES)
    for n, result in zip(SIZES, results):
        scalar = _scalar_gflops(configuration, n)
        assert result.gflops == pytest.approx(scalar, rel=TOL)
        assert result.n == n


def test_batch_matches_scalar_on_process_grid():
    cluster = single_element_cluster()
    results = batch_linpack(
        "acmlg_both", SIZES[:2], cluster, ProcessGrid(2, 4), seed=SEED
    )
    for n, result in zip(SIZES[:2], results):
        scalar = _scalar_gflops("acmlg_both", n, grid=(2, 4))
        assert result.gflops == pytest.approx(scalar, rel=TOL)


def test_batch_per_point_nb():
    from repro.hpl.driver import _analytic_for

    cluster = single_element_cluster()
    nbs = (768, 1216)
    ns = (11500, 11500)
    config = Configuration.ACMLG_BOTH
    stepper = _analytic_for(config, cluster, ProcessGrid(1, 1), SEED)
    batch = run_batch(stepper, ns, nbs=nbs)
    for nb, result in zip(nbs, batch):
        fresh = _analytic_for(
            config, cluster, ProcessGrid(1, 1), SEED, overrides={"nb": nb}
        )
        scalar = fresh.run(11500)
        assert result.elapsed == pytest.approx(scalar.elapsed, rel=TOL)
        assert result.config.nb == nb


def test_batch_single_point_degenerate():
    cluster = single_element_cluster()
    (result,) = batch_linpack("cpu", (5750,), cluster, ProcessGrid(1, 1), seed=SEED)
    assert result.gflops == pytest.approx(_scalar_gflops("cpu", 5750), rel=TOL)


def test_batch_rejects_faulted_stepper():
    from repro.faults.spec import FaultSpec, GpuThrottle
    from repro.hpl.driver import _analytic_for

    cluster = single_element_cluster()
    faulted = _analytic_for(
        Configuration.ACMLG_BOTH,
        cluster,
        ProcessGrid(1, 1),
        SEED,
        faults=FaultSpec(throttles=(GpuThrottle(at=0.0, clock_factor=0.8),)),
    )
    with pytest.raises(ValueError, match="fault"):
        run_batch(faulted, (5750,))


def test_batch_seed_sensitivity_tracks_scalar():
    cluster = single_element_cluster()
    a = batch_linpack("acmlg_both", (11500,), cluster, ProcessGrid(1, 1), seed=7)
    b = batch_linpack("acmlg_both", (11500,), cluster, ProcessGrid(1, 1), seed=8)
    assert a[0].gflops == pytest.approx(_scalar_gflops("acmlg_both", 11500, seed=7), rel=TOL)
    assert b[0].gflops == pytest.approx(_scalar_gflops("acmlg_both", 11500, seed=8), rel=TOL)
