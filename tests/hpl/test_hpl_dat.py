"""Tests for the HPL.dat reader/writer."""

import pytest

from repro.hpl.hpl_dat import TIANHE1_HPL_DAT, HplDat, parse_hpl_dat


class TestRender:
    def test_contains_all_fields(self):
        dat = HplDat(ns=[1000, 2000], nbs=[64], grids=[(2, 3)])
        text = dat.render()
        assert "1000 2000" in text
        assert "64" in text
        assert "2            Ps" in text
        assert "3            Qs" in text

    def test_tianhe1_preset(self):
        text = TIANHE1_HPL_DAT.render()
        assert "2240000" in text
        assert "1216" in text


class TestParse:
    def test_roundtrip(self):
        dat = HplDat(ns=[46000, 23000], nbs=[1216, 196], grids=[(1, 1), (8, 8)])
        parsed = parse_hpl_dat(dat.render())
        assert parsed.ns == [46000, 23000]
        assert parsed.nbs == [1216, 196]
        assert parsed.grids == [(1, 1), (8, 8)]

    def test_real_world_format(self):
        text = """HPLinpack benchmark input file
Innovative Computing Laboratory, University of Tennessee
HPL.out      output file name (if any)
6            device out (6=stdout,7=stderr,file)
1            # of problems sizes (N)
29184        Ns
1            # of NBs
192          NBs
0            PMAP process mapping (0=Row-,1=Column-major)
1            # of process grids (P x Q)
2            Ps
2            Qs
16.0         threshold
"""
        parsed = parse_hpl_dat(text)
        assert parsed.ns == [29184]
        assert parsed.nbs == [192]
        assert parsed.grids == [(2, 2)]

    def test_runs_cross_product(self):
        dat = HplDat(ns=[100, 200], nbs=[16], grids=[(1, 2)])
        runs = list(dat.runs())
        assert len(runs) == 2
        assert runs[0][0] == 100 and runs[0][1] == 16
        assert runs[0][2].npcol == 2

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            parse_hpl_dat("just\ntwo lines")

    def test_validation(self):
        with pytest.raises(ValueError):
            HplDat(ns=[])
        with pytest.raises(ValueError):
            HplDat(ns=[-5])
        with pytest.raises(ValueError):
            HplDat(grids=[(0, 2)])
