"""Unit and property tests for ProcessGrid and BlockCyclic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpl.grid import BlockCyclic, ProcessGrid


class TestProcessGrid:
    def test_row_major_ranks(self):
        grid = ProcessGrid(2, 3)
        assert grid.size == 6
        assert grid.coords(0) == (0, 0)
        assert grid.coords(5) == (1, 2)
        assert grid.rank_of(1, 2) == 5

    def test_paper_grid(self):
        grid = ProcessGrid(64, 80)
        assert grid.size == 5120
        assert grid.coords(5119) == (63, 79)

    def test_row_and_col_members(self):
        grid = ProcessGrid(2, 3)
        assert grid.row_members(1) == [3, 4, 5]
        assert grid.col_members(2) == [2, 5]

    def test_bounds_checked(self):
        grid = ProcessGrid(2, 2)
        with pytest.raises(ValueError):
            grid.coords(4)
        with pytest.raises(ValueError):
            grid.rank_of(2, 0)


class TestBlockCyclic:
    def test_owner_cycles_over_blocks(self):
        bc = BlockCyclic(n=12, nb=2, nprocs=3)
        # blocks: [0,1]->0, [2,3]->1, [4,5]->2, [6,7]->0, ...
        assert bc.owner(0) == 0
        assert bc.owner(3) == 1
        assert bc.owner(5) == 2
        assert bc.owner(7) == 0

    def test_to_local_and_back(self):
        bc = BlockCyclic(n=20, nb=3, nprocs=2)
        for g in range(20):
            proc, l = bc.to_local(g)
            assert bc.to_global(proc, l) == g

    def test_local_count_matches_enumeration(self):
        bc = BlockCyclic(n=23, nb=4, nprocs=3)
        for proc in range(3):
            assert bc.local_count(proc) == len(bc.globals_of(proc))

    def test_globals_ascending(self):
        bc = BlockCyclic(n=50, nb=7, nprocs=4)
        for proc in range(4):
            g = bc.globals_of(proc)
            assert np.all(np.diff(g) > 0)

    def test_partition_is_exact(self):
        bc = BlockCyclic(n=100, nb=6, nprocs=5)
        union = np.sort(np.concatenate([bc.globals_of(p) for p in range(5)]))
        assert np.array_equal(union, np.arange(100))

    def test_first_local_at_or_after(self):
        bc = BlockCyclic(n=40, nb=4, nprocs=3)
        for proc in range(3):
            globals_ = bc.globals_of(proc)
            for g in range(41):
                expected = int(np.searchsorted(globals_, g))
                assert bc.first_local_at_or_after(proc, g) == expected

    def test_count_at_or_after(self):
        bc = BlockCyclic(n=40, nb=4, nprocs=3)
        for proc in range(3):
            globals_ = bc.globals_of(proc)
            assert bc.local_count_at_or_after(proc, 17) == int(np.sum(globals_ >= 17))

    def test_empty(self):
        bc = BlockCyclic(n=0, nb=4, nprocs=2)
        assert bc.local_count(0) == 0
        assert len(bc.globals_of(1)) == 0

    @given(st.integers(0, 400), st.integers(1, 20), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_and_counts(self, n, nb, nprocs):
        bc = BlockCyclic(n, nb, nprocs)
        total = 0
        for proc in range(nprocs):
            globals_ = bc.globals_of(proc)
            assert len(globals_) == bc.local_count(proc)
            total += len(globals_)
            for l, g in enumerate(globals_):
                assert bc.to_local(g) == (proc, l)
        assert total == n

    @given(st.integers(1, 300), st.integers(1, 16), st.integers(1, 6), st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_property_suffix_structure(self, n, nb, nprocs, g):
        """Items with global index >= g form a local suffix on every proc."""
        g = min(g, n)
        bc = BlockCyclic(n, nb, nprocs)
        for proc in range(nprocs):
            globals_ = bc.globals_of(proc)
            first = bc.first_local_at_or_after(proc, g)
            assert np.all(globals_[:first] < g)
            assert np.all(globals_[first:] >= g)
