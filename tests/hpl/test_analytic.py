"""Tests for the analytic HPL stepper and the benchmark driver."""

import numpy as np
import pytest

from repro.hpl.analytic import (
    AnalyticConfig,
    AnalyticHpl,
    _first_local_at_or_after,
    _local_count,
)
from repro.hpl.driver import CONFIGURATIONS, single_element_cluster
from repro.session import Scenario, run as run_scenario
from repro.hpl.grid import BlockCyclic, ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import tianhe1_cluster
from repro.machine.variability import NO_VARIABILITY
from repro.util.units import lu_flops


class TestVectorizedBlockCyclicHelpers:
    @pytest.mark.parametrize("n,nb,p", [(100, 7, 4), (64, 8, 3), (23, 5, 2)])
    def test_match_scalar_implementations(self, n, nb, p):
        bc = BlockCyclic(n, nb, p)
        for g in range(0, n, 3):
            vec = _first_local_at_or_after(g, nb, p)
            for proc in range(p):
                assert vec[proc] == bc.first_local_at_or_after(proc, g)
        counts = _local_count(n, nb, p)
        for proc in range(p):
            assert counts[proc] == bc.local_count(proc)


class TestAnalyticBasics:
    def run(self, config_name="acmlg_both", n=10000, **kw):
        return run_scenario(
            Scenario(
                scheduler=config_name, n=n, variability=NO_VARIABILITY, **kw
            )
        )

    def test_gflops_uses_hpl_workload(self):
        r = self.run(n=8000)
        assert r.analytic.flops == lu_flops(8000)
        assert r.gflops == pytest.approx(lu_flops(8000) / r.elapsed / 1e9)

    def test_steps_cover_all_flops(self):
        r = self.run(n=10000, collect_steps=True)
        steps = r.analytic.steps
        assert len(steps) == -(-10000 // 1216)
        assert steps[-1].cum_flops == pytest.approx((2 / 3) * 10000**3)
        times = [s.cum_time for s in steps]
        assert times == sorted(times)

    def test_progress_curve_monotone_fractions(self):
        r = self.run(n=20000, collect_steps=True)
        curve = r.analytic.progress_curve()
        fractions = [f for f, _ in curve]
        assert fractions == sorted(fractions)
        # Steps cover the (2/3)N^3 factorization; the remaining 2N^2 is the solve.
        assert fractions[-1] == pytest.approx(1.0, abs=1e-3)

    def test_deterministic_without_variability(self):
        a = self.run(n=12000).gflops
        b = self.run(n=12000).gflops
        assert a == b

    def test_performance_increases_with_n(self):
        small = self.run(n=6000).gflops
        big = self.run(n=40000).gflops
        assert big > small

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError):
            AnalyticConfig(mapping="magic")

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError, match="valid configurations"):
            Scenario(scheduler="nope", n=1000)

    def test_grid_larger_than_table_rejected(self):
        cluster = single_element_cluster()
        with pytest.raises(ValueError):
            AnalyticHpl(
                cluster.rate_table().subset(np.arange(2)),
                ProcessGrid(2, 2),
                None,
            )


class TestPaperOrderings:
    """The qualitative relationships Fig. 9 asserts."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            name: run_scenario(
                Scenario(scheduler=name, n=46000, variability=NO_VARIABILITY)
            ).gflops
            for name in CONFIGURATIONS
        }

    def test_full_framework_wins(self, results):
        best = results["acmlg_both"]
        assert all(best >= v for v in results.values())

    def test_each_optimization_beats_vendor(self, results):
        assert results["acmlg_adaptive"] > results["acmlg"]
        assert results["acmlg_pipe"] > results["acmlg"]

    def test_vendor_beats_cpu_only(self, results):
        assert results["acmlg"] > results["cpu"]

    def test_single_element_anchor_band(self, results):
        """196.7 GFLOPS (70.1% of 280.5) within a +-15% modelling band."""
        assert results["acmlg_both"] == pytest.approx(196.7, rel=0.15)
        fraction = results["acmlg_both"] * 1e9 / 280.48e9
        assert 0.6 < fraction < 0.85

    def test_cpu_only_anchor(self, results):
        """196.7 / 5.49 = 35.8 GFLOPS for the MKL build."""
        assert results["cpu"] == pytest.approx(35.8, rel=0.05)

    def test_speedup_ratios_same_order_as_paper(self, results):
        assert 2.5 < results["acmlg_both"] / results["acmlg"] < 6.5  # paper: 3.3
        assert 4.0 < results["acmlg_both"] / results["cpu"] < 7.5  # paper: 5.49


class TestMultiElement:
    def test_cabinet_anchor(self):
        """Fig 12: one cabinet ~ 8.02 TFLOPS at the downclocked frequency."""
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=2009)
        r = run_scenario(
            Scenario(
                scheduler="acmlg_both", n=280_000, cluster=cluster,
                grid=ProcessGrid(8, 8),
            )
        )
        assert r.tflops == pytest.approx(8.02, rel=0.10)

    def test_scaling_efficiency_band(self):
        """Fig 12: 87.76% efficiency from 1 to 80 cabinets (use 4 for speed).

        Efficiency per cabinet must degrade gently (> 80% at 4 cabinets).
        """
        one = run_scenario(
            Scenario(
                scheduler="acmlg_both", n=280_000,
                cluster=Cluster(tianhe1_cluster(cabinets=1), seed=2009),
                grid=ProcessGrid(8, 8),
            )
        )
        four = run_scenario(
            Scenario(
                scheduler="acmlg_both", n=560_000,
                cluster=Cluster(tianhe1_cluster(cabinets=4), seed=2009),
                grid=ProcessGrid(16, 16),
            )
        )
        efficiency = four.tflops / (4 * one.tflops)
        assert 0.8 < efficiency <= 1.0

    def test_adaptive_beats_qilin_at_scale(self):
        cluster = Cluster(tianhe1_cluster(cabinets=1, gpu_clock_mhz=750.0), seed=2009)
        gaps = []
        for seed in (1, 2, 3):
            ours = run_scenario(
                Scenario(
                    scheduler="acmlg_both", n=150_000, cluster=cluster,
                    grid=ProcessGrid(8, 8), seed=seed,
                )
            )
            qilin = run_scenario(
                Scenario(
                    scheduler="qilin", n=150_000, cluster=cluster,
                    grid=ProcessGrid(8, 8), seed=seed,
                )
            )
            gaps.append(ours.gflops / qilin.gflops - 1)
        assert np.mean(gaps) > 0.03  # paper: +15.56%; we reproduce the direction

    def test_endgame_performance_drop(self):
        """Fig 13: the running average drops in the final progress percent."""
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=2009)
        r = run_scenario(
            Scenario(
                scheduler="acmlg_both", n=200_000, cluster=cluster,
                grid=ProcessGrid(8, 8), collect_steps=True,
            )
        )
        curve = r.analytic.progress_curve()
        peak = max(g for _, g in curve)
        final = curve[-1][1]
        assert final < peak  # the tail drags the average down

    def test_mean_gsplit_recorded(self):
        r = run_scenario(
            Scenario(
                scheduler="acmlg_both", n=20000, variability=NO_VARIABILITY,
                collect_steps=True,
            )
        )
        splits = [s.mean_gsplit for s in r.analytic.steps]
        assert all(0 <= s <= 1 for s in splits)
        # Large early steps favour the GPU strongly; the endgame backs off.
        assert splits[0] > 0.8
        assert splits[-1] < splits[0]
