"""Integration tests: the numeric distributed LU over simulated MPI."""

import numpy as np
import pytest

from repro.blas.dgetrf import dgetf2
from repro.hpl.dist import (
    DistributedLU,
    ElementEngine,
    InstantEngine,
    collect_matrix,
    distribute_matrix,
    panel_factor_flops,
)
from repro.hpl.grid import ProcessGrid
from repro.hpl.solve import hpl_residual_ok, solve_from_factorization
from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND, tianhe1_element
from repro.mpi.comm import SimMPI
from repro.sim import Simulator


def run_factorization(n, nb, nprow, npcol, seed=0, with_network=True, engines=None, sim=None):
    sim = sim or Simulator()
    grid = ProcessGrid(nprow, npcol)
    network = Interconnect(sim, QDR_INFINIBAND, grid.size) if with_network else None
    world = SimMPI(sim, grid.size, network)
    lu = DistributedLU(sim, grid, nb, world, engines=engines)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    result = lu.factor(a)
    return a, grid, result


class TestDistributeCollect:
    def test_roundtrip_identity(self):
        grid = ProcessGrid(2, 3)
        a = np.random.default_rng(0).standard_normal((17, 17))
        locals_ = distribute_matrix(grid, a, nb=3)
        assert np.array_equal(collect_matrix(grid, locals_, 17, 17, 3), a)

    def test_local_shapes(self):
        grid = ProcessGrid(2, 2)
        a = np.arange(64.0).reshape(8, 8)
        locals_ = distribute_matrix(grid, a, nb=2)
        assert all(loc.shape == (4, 4) for loc in locals_)
        # Rank 0 holds row blocks {0,2} x col blocks {0,2}.
        assert locals_[0][0, 0] == a[0, 0]
        assert locals_[0][2, 0] == a[4, 0]


@pytest.mark.parametrize(
    "n,nb,p,q",
    [
        (16, 4, 1, 1),
        (24, 4, 1, 2),
        (24, 4, 2, 1),
        (32, 4, 2, 2),
        (30, 4, 2, 3),  # ragged: 30 = 7*4 + 2
        (36, 5, 3, 2),
        (20, 20, 2, 2),  # nb >= n: single panel
    ],
)
class TestFactorizationCorrectness:
    def test_matches_serial_lu(self, n, nb, p, q):
        a, grid, result = run_factorization(n, nb, p, q, seed=1)
        serial = a.copy()
        serial_piv = dgetf2(serial)
        factored = collect_matrix(grid, result.locals_, n, n, nb)
        assert np.array_equal(result.piv, serial_piv)
        assert np.allclose(factored, serial, atol=1e-9)

    def test_solve_passes_hpl_residual(self, n, nb, p, q):
        a, grid, result = run_factorization(n, nb, p, q, seed=2)
        b = np.random.default_rng(3).standard_normal(n)
        x = solve_from_factorization(grid, result, n, nb, b)
        residual, ok = hpl_residual_ok(a, x, b)
        assert ok, f"residual {residual} fails the HPL test"


class TestTimingBehaviour:
    def test_network_makes_it_slower_than_no_network(self):
        _, _, with_net = run_factorization(32, 4, 2, 2, seed=4, with_network=True)
        _, _, without = run_factorization(32, 4, 2, 2, seed=4, with_network=False)
        assert with_net.elapsed > without.elapsed
        assert without.elapsed == 0.0  # instant engines, no network

    def test_bytes_and_messages_counted(self):
        _, _, result = run_factorization(32, 4, 2, 2, seed=5)
        assert result.messages > 0
        assert result.bytes_sent > 0

    def test_element_engine_charges_time(self):
        sim = Simulator()
        from repro.core.hybrid_dgemm import HybridDgemm
        from repro.core.static_map import StaticMapper
        from repro.machine.node import ComputeElement
        from repro.machine.variability import NO_VARIABILITY

        grid = ProcessGrid(1, 2)
        engines = []
        for r in range(grid.size):
            element = ComputeElement(
                sim, tianhe1_element(), variability=NO_VARIABILITY, name=f"e{r}"
            )
            hybrid = HybridDgemm(element, StaticMapper(0.889, 3), pipelined=True, jitter=False)
            engines.append(ElementEngine(hybrid))
        network = Interconnect(sim, QDR_INFINIBAND, grid.size)
        world = SimMPI(sim, grid.size, network)
        lu = DistributedLU(sim, grid, 8, world, engines=engines)
        a = np.random.default_rng(6).standard_normal((32, 32))
        result = lu.factor(a)
        assert result.elapsed > 0
        assert any(s.update_time > 0 for s in result.stats)
        assert any(s.cpu_phase_time > 0 for s in result.stats)
        # And the math is still right.
        serial = a.copy()
        dgetf2(serial)
        assert np.allclose(collect_matrix(grid, result.locals_, 32, 32, 8), serial, atol=1e-9)

    def test_stats_one_per_rank(self):
        _, grid, result = run_factorization(24, 4, 2, 3, seed=7)
        assert len(result.stats) == grid.size
        assert all(s.elapsed >= 0 for s in result.stats)


class TestPanelFlops:
    def test_panel_factor_flops_positive(self):
        assert panel_factor_flops(100, 10) == pytest.approx(100 * 100 - 1000 / 3)

    def test_degenerate(self):
        assert panel_factor_flops(0, 10) == 0.0
        assert panel_factor_flops(10, 0) == 0.0
