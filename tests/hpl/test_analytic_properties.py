"""Property-based tests for the analytic HPL stepper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpl.analytic import AnalyticConfig, AnalyticHpl
from repro.session import Scenario, run as run_scenario
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.presets import tianhe1_cluster
from repro.machine.variability import NO_VARIABILITY
from repro.util.units import lu_flops


def run_element(configuration, n, **kw):
    return run_scenario(Scenario(scheduler=configuration, n=n, **kw))


def run_grid(configuration, n, cluster, grid, **kw):
    return run_scenario(
        Scenario(scheduler=configuration, n=n, cluster=cluster, grid=grid, **kw)
    )


class TestSingleElementProperties:
    @given(st.integers(3, 40))
    @settings(max_examples=15, deadline=None)
    def test_never_exceeds_element_peak(self, n_thousands):
        n = n_thousands * 1000
        result = run_element("acmlg_both", n, variability=NO_VARIABILITY)
        assert result.gflops * 1e9 < 280.5e9

    @given(st.integers(3, 40))
    @settings(max_examples=15, deadline=None)
    def test_cpu_only_never_exceeds_socket_peak(self, n_thousands):
        n = n_thousands * 1000
        result = run_element("cpu", n, variability=NO_VARIABILITY)
        assert result.gflops * 1e9 < 40.48e9

    @given(st.integers(5, 30), st.integers(5, 30))
    @settings(max_examples=10, deadline=None)
    def test_monotone_in_n(self, a, b):
        """Larger problems run at better rates (Fig. 9's shape).

        Small local dips exist near tiling boundaries (e.g. trailing sizes
        crossing the 8192 task knee), so monotonicity is asserted between
        well-separated sizes with a 5% slack.
        """
        lo, hi = sorted((a * 1000, b * 1000))
        if hi < lo * 1.4:
            return
        r_lo = run_element("acmlg_both", lo, variability=NO_VARIABILITY)
        r_hi = run_element("acmlg_both", hi, variability=NO_VARIABILITY)
        assert r_hi.gflops >= r_lo.gflops * 0.95

    @given(st.integers(200, 2000))
    @settings(max_examples=10, deadline=None)
    def test_time_is_flops_over_rate(self, n_div):
        n = n_div * 10
        result = run_element("acmlg_both", n, variability=NO_VARIABILITY)
        assert result.gflops == pytest.approx(lu_flops(n) / result.elapsed / 1e9)


class TestGridProperties:
    @pytest.fixture(scope="class")
    def cluster(self):
        return Cluster(tianhe1_cluster(cabinets=1, variability=NO_VARIABILITY), seed=1)

    @pytest.mark.parametrize("shape", [(1, 4), (2, 2), (4, 1)])
    def test_grid_aspect_affects_but_not_wildly(self, cluster, shape):
        """Any 4-process grid lands within 25% of the square one."""
        square = run_grid("acmlg_both", 60000, cluster, ProcessGrid(2, 2)).gflops
        other = run_grid("acmlg_both", 60000, cluster, ProcessGrid(*shape)).gflops
        assert other == pytest.approx(square, rel=0.25)

    def test_more_processes_more_throughput(self, cluster):
        one = run_grid("acmlg_both", 40000, cluster, ProcessGrid(1, 1)).gflops
        four = run_grid("acmlg_both", 80000, cluster, ProcessGrid(2, 2)).gflops
        sixteen = run_grid("acmlg_both", 160000, cluster, ProcessGrid(4, 4)).gflops
        assert one < four < sixteen

    def test_weak_scaling_efficiency_reasonable(self, cluster):
        one = run_grid("acmlg_both", 40000, cluster, ProcessGrid(1, 1)).gflops
        sixteen = run_grid("acmlg_both", 160000, cluster, ProcessGrid(4, 4)).gflops
        assert sixteen / (16 * one) > 0.55


class TestMappingOrderInvariance:
    """The qualitative config ordering must hold at any reasonable size."""

    @given(st.integers(20, 46))
    @settings(max_examples=8, deadline=None)
    def test_ordering(self, n_thousands):
        n = n_thousands * 1000
        values = {
            name: run_element(name, n, variability=NO_VARIABILITY).gflops
            for name in ("cpu", "acmlg", "acmlg_both")
        }
        assert values["acmlg_both"] > values["acmlg"] > values["cpu"]


class TestEndgameFallbackProperty:
    @given(st.integers(10, 30))
    @settings(max_examples=8, deadline=None)
    def test_fallback_never_hurts(self, n_thousands):
        n = n_thousands * 1000
        base = run_element("acmlg_both", n, variability=NO_VARIABILITY)
        opt = run_element(
            "acmlg_both", n, variability=NO_VARIABILITY,
            overrides={"endgame_cpu_fallback": True},
        )
        assert opt.elapsed <= base.elapsed * (1 + 1e-9)
