"""Grid-scale DES crossval cells (distributed LU on real process grids)."""

import numpy as np
import pytest

from repro.verify.divergence import DivergenceReport
from repro.verify.gridcases import (
    GRID_MATRIX,
    GRID_MATRIX_SLOW,
    GridCase,
    run_grid_case,
    run_grid_matrix,
)


class TestMatrixShape:
    def test_default_matrix_reaches_8x8(self):
        # The acceptance floor: the default DES matrix includes >= one
        # 64-rank grid cell.
        assert any(case.ranks >= 64 for case in GRID_MATRIX)

    def test_slow_tier_reaches_16x16(self):
        assert any(case.ranks >= 256 for case in GRID_MATRIX_SLOW)

    def test_names_unique(self):
        names = [c.name for c in GRID_MATRIX + GRID_MATRIX_SLOW]
        assert len(names) == len(set(names))


class TestSmallCells:
    def test_2x2_cell_passes(self):
        outcome = run_grid_case(GRID_MATRIX[0])
        assert outcome.ok, outcome.report.render()
        assert outcome.timed.messages > 0
        assert outcome.timed.elapsed > 0.0
        # The reference run has no network and instant engines: zero time.
        assert outcome.reference.elapsed == 0.0

    def test_network_independence_check_fires(self):
        # Corrupt a local block after the fact: the comparison must notice.
        outcome = run_grid_case(GRID_MATRIX[0])
        outcome.timed.locals_[0][0, 0] += 1.0
        assert not np.array_equal(
            outcome.timed.locals_[0], outcome.reference.locals_[0]
        )

    def test_matrix_runner_aggregates(self):
        report = run_grid_matrix(GRID_MATRIX[:1])
        assert isinstance(report, DivergenceReport)
        assert report.ok, report.render()
        assert report.checked == [GRID_MATRIX[0].name]


class TestElapsedBand:
    def test_lower_bound_is_positive(self):
        outcome = run_grid_case(GridCase(name="t", nprow=2, npcol=2, n=64, nb=8))
        per_rank = [s.update_time + s.cpu_phase_time for s in outcome.timed.stats]
        assert max(per_rank) > 0.0
        assert outcome.timed.elapsed >= max(per_rank)


@pytest.mark.slow
class TestLargeGrids:
    def test_8x8_cell_passes(self):
        case = next(c for c in GRID_MATRIX if c.ranks == 64)
        outcome = run_grid_case(case)
        assert outcome.ok, outcome.report.render()

    def test_16x16_cell_passes(self):
        outcome = run_grid_case(GRID_MATRIX_SLOW[0])
        assert outcome.ok, outcome.report.render()
