"""The invariant catalogue: each checker accepts clean runs, flags broken ones."""

from dataclasses import replace

import pytest

from repro.core.adaptive import AdaptiveMapper, Observation
from repro.core.pipeline import EO, IDLE, INPUT, N_IDLE, N_INPUT, StateRecord
from repro.faults.spec import DegradedMode, FaultEvent
from repro.hpl.driver import Configuration
from repro.session import Scenario, Session
from repro.verify.invariants import (
    RunWatcher,
    check_convergence,
    check_fault_consistency,
    check_flop_conservation,
    check_gsplit_bounds,
    check_mapper_databases,
    check_monotone_clock,
    check_pipeline_legality,
    check_run,
    split_conservation,
    stationary_gsplit,
    watch,
)
from repro.verify.divergence import VerificationError


@pytest.fixture(scope="module")
def clean_result():
    scenario = Scenario(
        scheduler=Configuration.ACMLG_BOTH, n=9000, seed=11, collect_steps=True
    )
    return Session(scenario).run()


class TestFlopConservation:
    def test_clean_run_conserves(self, clean_result):
        assert check_flop_conservation(clean_result) == []

    def test_requires_collected_steps(self):
        result = Session(
            Scenario(scheduler="acmlg_both", n=9000, seed=11)
        ).run()
        divs = check_flop_conservation(result)
        assert divs and "collect" in divs[0].tolerance

    def test_detects_tampered_step_flops(self, clean_result):
        steps = list(clean_result.analytic.steps)
        steps[2] = replace(steps[2], flops=steps[2].flops * 1.001)
        tampered = replace(clean_result.analytic, steps=steps)
        divs = check_flop_conservation(tampered, trace="t")
        assert any(d.metric == "step_flops" and d.step == 2 for d in divs)

    def test_split_conservation_accepts_exact_cover(self):
        assert split_conservation(100, [60, 20, 20]) == []

    def test_split_conservation_rejects_loss_and_negative_rows(self):
        assert split_conservation(100, [60, 20, 19])
        assert split_conservation(100, [120, -20])


class TestSplitBounds:
    def test_clean_run_in_bounds(self, clean_result):
        assert check_gsplit_bounds(clean_result) == []

    def test_detects_out_of_range_split(self, clean_result):
        steps = list(clean_result.analytic.steps)
        steps[0] = replace(steps[0], mean_gsplit=1.2)
        tampered = replace(clean_result.analytic, steps=steps)
        divs = check_gsplit_bounds(tampered)
        assert divs and divs[0].metric == "gsplit"

    def test_mapper_databases_valid_after_observations(self):
        mapper = AdaptiveMapper(0.8, 2, max_workload=1e12)
        for _ in range(6):
            mapper.observe(
                Observation(
                    workload=1e10,
                    gpu_workload=8e9,
                    gpu_time=0.02,
                    core_workloads=(1e9, 1e9),
                    core_times=(0.02, 0.02),
                )
            )
        assert check_mapper_databases(mapper) == []


class TestMonotoneClock:
    def test_clean_run_monotone(self, clean_result):
        assert check_monotone_clock(clean_result) == []

    def test_detects_negative_step_time(self, clean_result):
        steps = list(clean_result.analytic.steps)
        steps[1] = replace(steps[1], step_time=-0.5)
        tampered = replace(clean_result.analytic, steps=steps)
        divs = check_monotone_clock(tampered)
        assert any(d.metric == "step_time" and d.step == steps[1].step for d in divs)


class TestPipelineLegality:
    def test_legal_ct_nt_interleaving(self):
        log = [
            StateRecord(0.0, "CT", IDLE, 0),
            StateRecord(0.0, "NT", N_IDLE, 1),
            StateRecord(0.1, "CT", INPUT, 0),
            StateRecord(0.2, "NT", N_INPUT, 1),
            StateRecord(0.3, "CT", EO, 0),
            StateRecord(0.5, "CT", IDLE, 1),
            StateRecord(0.6, "CT", EO, 1),  # Idle -> EO legal: NT prefetched
            StateRecord(0.7, "CT", IDLE, None),
            StateRecord(0.7, "NT", N_IDLE, None),
        ]
        assert check_pipeline_legality(log) == []

    def test_illegal_transition_flagged(self):
        log = [
            StateRecord(0.0, "CT", INPUT, 0),
            StateRecord(0.1, "CT", INPUT, 0),  # Input -> Input is not in Table I
        ]
        divs = check_pipeline_legality(log)
        assert any(d.metric == "transition" for d in divs)

    def test_unknown_controller_and_state_flagged(self):
        divs = check_pipeline_legality([StateRecord(0.0, "XT", IDLE, 0)])
        assert any(d.metric == "controller" for d in divs)
        divs = check_pipeline_legality([StateRecord(0.0, "NT", "Weird", 0)])
        assert any(d.metric == "state" for d in divs)

    def test_clock_must_not_rewind(self):
        log = [
            StateRecord(1.0, "CT", IDLE, 0),
            StateRecord(0.5, "CT", INPUT, 0),
        ]
        divs = check_pipeline_legality(log)
        assert any(d.metric == "state_time" for d in divs)


class TestFaultConsistency:
    def test_none_is_consistent(self):
        assert check_fault_consistency(None) == []

    def test_real_faulted_run_is_consistent(self):
        from repro.faults.spec import FaultSpec, GpuThrottle

        result = Session(
            Scenario(
                scheduler="acmlg_both",
                n=9000,
                seed=11,
                collect_steps=True,
                faults=FaultSpec(throttles=(GpuThrottle(at=1.0, clock_factor=0.6),)),
            )
        ).run()
        assert result.degraded is not None
        assert check_fault_consistency(result.degraded) == []

    def test_flag_without_event_flagged(self):
        degraded = DegradedMode(gpu_throttled=True, events=[])
        divs = check_fault_consistency(degraded)
        assert any(d.metric == "gpu_throttled" for d in divs)

    def test_event_without_flag_flagged(self):
        degraded = DegradedMode(events=[FaultEvent(1.0, "gpu_dropout")])
        divs = check_fault_consistency(degraded)
        assert any(d.metric == "gpu_lost" for d in divs)

    def test_retry_counter_must_match_events(self):
        degraded = DegradedMode(
            pcie_degraded=True,
            pcie_retries=3,
            events=[FaultEvent(0.5, "pcie_retry")],
        )
        divs = check_fault_consistency(degraded)
        assert any(d.metric == "pcie_retries" for d in divs)

    def test_events_must_be_time_ordered(self):
        degraded = DegradedMode(
            straggling=True,
            events=[FaultEvent(2.0, "straggler_on"), FaultEvent(1.0, "pcie_retry")],
        )
        divs = check_fault_consistency(degraded)
        assert any(d.metric in ("event_order", "pcie_retries") for d in divs)
        assert any(d.metric == "event_order" for d in divs)


class TestConvergence:
    def test_stationary_gsplit_is_rate_ratio(self):
        assert stationary_gsplit(400.0, 100.0) == pytest.approx(0.8)
        assert stationary_gsplit(0.0, 0.0) == 0.0

    def test_converged_history_passes(self):
        history = [0.5, 0.7, 0.78, 0.80, 0.80, 0.80, 0.80, 0.80]
        assert check_convergence(history, 400.0, 100.0) == []

    def test_diverged_history_flagged(self):
        history = [0.5] * 6
        divs = check_convergence(history, 400.0, 100.0)
        assert divs and divs[0].metric == "converged_gsplit"


class TestCheckRun:
    def test_clean_run_passes_everything(self, clean_result):
        report = check_run(clean_result, trace="clean")
        assert report.ok
        assert report.checked == ["clean"]

    def test_tampering_names_trace_step_and_metric(self, clean_result):
        steps = list(clean_result.analytic.steps)
        steps[3] = replace(steps[3], flops=0.0)
        tampered = replace(clean_result.analytic, steps=steps)
        report = check_run(tampered, trace="tampered")
        assert not report.ok
        line = report.divergences[0].describe()
        assert "tampered" in line and "step" in line


class TestRunWatcher:
    def test_watch_accepts_an_instrumented_run(self):
        with watch("watched") as watcher:
            Session(
                Scenario(scheduler="acmlg_both", n=9000, seed=11)
            ).run(telemetry=watcher.telemetry)
        assert watcher.report.ok
        # The run actually published something — the watcher saw real data.
        assert watcher.telemetry.sink.spans or watcher.telemetry.metrics.get(
            "hpl.step_seconds"
        )

    def test_watcher_flags_unclosed_span(self):
        watcher = RunWatcher("spans")
        watcher.telemetry.sink.begin("element0", "dgemm", 0.0)
        report = watcher.verify()
        assert any(d.metric == "open_span" for d in report.divergences)

    def test_strict_watch_raises(self):
        with pytest.raises(VerificationError):
            with watch("strict") as watcher:
                watcher.telemetry.sink.begin("element0", "dgemm", 0.0)

    def test_non_strict_watch_reports_instead(self):
        with watch("lax", strict=False) as watcher:
            watcher.telemetry.sink.begin("element0", "dgemm", 0.0)
        assert not watcher.report.ok
