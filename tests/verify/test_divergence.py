"""Divergence records and reports — the verify layer's failure language."""

import json

import pytest

from repro.verify.divergence import Divergence, DivergenceReport, VerificationError


def _div(**kw) -> Divergence:
    base = dict(
        trace="fig8_acmlg_both",
        metric="gflops",
        expected=77.6,
        actual=75.1,
        tolerance="tol(rel=1e-06)",
    )
    base.update(kw)
    return Divergence(**base)


class TestDivergence:
    def test_describe_names_trace_metric_values_and_tolerance(self):
        line = _div().describe()
        for needle in ("fig8_acmlg_both", "gflops", "77.6", "75.1", "tol(rel=1e-06)"):
            assert needle in line

    def test_describe_includes_step_when_per_step(self):
        assert "step 3" in _div(step=3).describe()
        assert "step" not in _div().describe()

    def test_describe_appends_detail(self):
        assert "flop conservation" in _div(detail="invariant: flop conservation").describe()

    def test_none_values_render(self):
        line = _div(expected=None, actual=None).describe()
        assert "None" in line


class TestDivergenceReport:
    def test_empty_report_is_ok_and_truthy(self):
        report = DivergenceReport(checked=["a"])
        assert report.ok and bool(report) and len(report) == 0

    def test_add_flips_ok(self):
        report = DivergenceReport()
        report.add(_div())
        assert not report.ok and not bool(report) and len(report) == 1

    def test_extend_accepts_lists_and_reports(self):
        inner = DivergenceReport(checked=["x"])
        inner.add(_div(trace="x"))
        outer = DivergenceReport(checked=["y"])
        outer.extend([_div(trace="y")])
        outer.extend(inner)
        assert len(outer) == 2
        assert outer.checked == ["y", "x"]

    def test_traces_deduplicated_in_first_hit_order(self):
        report = DivergenceReport()
        report.extend([_div(trace="b"), _div(trace="a"), _div(trace="b")])
        assert report.traces() == ["b", "a"]

    def test_render_lists_every_divergence(self):
        report = DivergenceReport(checked=["a", "b"])
        report.add(_div(step=2))
        text = report.render()
        assert "2 trace(s) checked" in text
        assert "DIVERGED" in text and "step 2" in text

    def test_render_passing_report_says_so(self):
        report = DivergenceReport(checked=["a"])
        assert "within declared tolerances" in report.render()

    def test_json_round_trip(self, tmp_path):
        report = DivergenceReport(checked=["a"])
        report.add(_div(step=1, detail="d"))
        path = report.write_json(tmp_path / "report.json")
        data = json.loads(path.read_text())
        assert data["ok"] is False
        assert data["checked"] == ["a"]
        assert data["divergences"][0]["metric"] == "gflops"
        assert data["divergences"][0]["step"] == 1

    def test_raise_if_diverged(self):
        report = DivergenceReport()
        report.raise_if_diverged()  # passing report: no raise
        report.add(_div())
        with pytest.raises(VerificationError) as exc:
            report.raise_if_diverged()
        assert exc.value.report is report
        assert "gflops" in str(exc.value)

    def test_verification_error_is_an_assertion(self):
        report = DivergenceReport()
        report.add(_div())
        with pytest.raises(AssertionError):
            report.raise_if_diverged()
