"""The golden-trace store: record/check round trips and drift detection."""

import json
from dataclasses import replace

import pytest

from repro.sched import builds
from repro.verify import golden
from repro.verify.golden import DEFAULT_GOLDEN_DIR, check, diff_rows, record, trace_path

FAST = ["fig8_cpu", "fig8_acmlg_both", "fault_throttle"]


@pytest.fixture(scope="module")
def recorded_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("golden")
    record(FAST, golden_dir=d)
    return d


class TestRecord:
    def test_writes_one_file_per_scenario(self, recorded_dir):
        for name in FAST:
            assert trace_path(name, recorded_dir).exists()

    def test_payload_shape(self, recorded_dir):
        data = json.loads(trace_path("fault_throttle", recorded_dir).read_text())
        assert data["version"] == golden.FORMAT_VERSION
        assert data["scenario"]["faults"] is True
        rec = data["recorded"]
        assert rec["gflops"] > 0 and rec["elapsed"] > 0
        assert rec["degraded"] is not None
        assert "gpu_throttle" in rec["fault_events"]
        assert len(rec["steps"]) > 3
        assert set(golden.STEP_FIELDS) <= set(rec["steps"][0])


class TestCheck:
    def test_round_trip_passes(self, recorded_dir):
        report = check(FAST, golden_dir=recorded_dir)
        assert report.ok
        assert report.checked == FAST

    def test_missing_trace_names_the_record_command(self, tmp_path):
        report = check(["fig8_cpu"], golden_dir=tmp_path)
        assert not report.ok
        assert "record" in report.divergences[0].detail

    def test_version_mismatch_asks_for_rerecord(self, recorded_dir, tmp_path):
        src = trace_path("fig8_cpu", recorded_dir).read_text()
        data = json.loads(src)
        data["version"] = 999
        trace_path("fig8_cpu", tmp_path).write_text(json.dumps(data))
        report = check(["fig8_cpu"], golden_dir=tmp_path)
        assert any(d.metric == "version" for d in report.divergences)

    def test_hand_edited_aggregate_is_caught(self, recorded_dir, tmp_path):
        data = json.loads(trace_path("fig8_cpu", recorded_dir).read_text())
        data["recorded"]["gflops"] *= 1.01
        trace_path("fig8_cpu", tmp_path).write_text(json.dumps(data))
        report = check(["fig8_cpu"], golden_dir=tmp_path)
        assert any(d.metric == "gflops" for d in report.divergences)

    def test_perturbed_model_constant_fails_readably(self, recorded_dir, monkeypatch):
        """The acceptance probe: nudge panel efficiency by ~2%, expect a
        divergence naming the trace, the step and the metric."""
        cfg = builds.HPL_BUILDS["acmlg_both"]
        monkeypatch.setitem(
            builds.HPL_BUILDS,
            "acmlg_both",
            replace(cfg, panel_efficiency=cfg.panel_efficiency - 0.01),
        )
        report = check(["fig8_acmlg_both"], golden_dir=recorded_dir)
        assert not report.ok
        per_step = [d for d in report.divergences if d.step is not None]
        assert per_step, "expected per-step divergences"
        line = per_step[0].describe()
        assert "fig8_acmlg_both" in line and "step" in line and per_step[0].metric

    def test_committed_store_covers_whole_catalogue(self):
        """The repo ships a recorded trace for every canonical scenario."""
        from repro.verify import scenarios

        for name in scenarios.names():
            assert trace_path(name, DEFAULT_GOLDEN_DIR).exists(), (
                f"golden trace for {name} missing from tests/golden/"
            )


class TestDiff:
    def test_rows_compare_recorded_and_fresh(self, recorded_dir):
        rows = diff_rows(["fig8_cpu"], golden_dir=recorded_dir)
        assert rows[0]["recorded_gflops"] == pytest.approx(rows[0]["fresh_gflops"])

    def test_unrecorded_rows_have_none(self, tmp_path):
        rows = diff_rows(["fig8_cpu"], golden_dir=tmp_path)
        assert rows[0]["recorded_gflops"] is None
        assert rows[0]["fresh_gflops"] > 0


@pytest.mark.slow
class TestCommittedStore:
    def test_full_check_against_committed_traces(self):
        """CI's main-branch gate: the committed golden store must verify."""
        report = check(golden_dir=DEFAULT_GOLDEN_DIR)
        assert report.ok, "\n" + report.render()
