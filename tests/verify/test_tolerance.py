"""Tolerance and Band semantics — the verify layer's comparison primitives."""

import math

import pytest

from repro.verify.tolerance import EXACT, Band, Tolerance


class TestTolerance:
    def test_exact_default_rejects_any_difference(self):
        assert Tolerance().ok(1.0, 1.0)
        assert not Tolerance().ok(1.0, 1.0 + 1e-15)

    def test_relative_bound(self):
        tol = Tolerance(rel=0.01)
        assert tol.ok(100.0, 100.9)
        assert not tol.ok(100.0, 101.1)

    def test_absolute_bound_covers_near_zero(self):
        tol = Tolerance(rel=1e-9, abs=0.5)
        assert tol.ok(0.0, 0.4)
        assert not tol.ok(0.0, 0.6)

    def test_either_bound_suffices(self):
        tol = Tolerance(rel=0.1, abs=1.0)
        assert tol.ok(100.0, 109.0)  # covered by rel
        assert tol.ok(0.1, 0.9)  # covered by abs
        assert not tol.ok(100.0, 112.0)

    def test_symmetric(self):
        tol = Tolerance(rel=0.05)
        assert tol.ok(100.0, 95.1) and tol.ok(100.0, 104.9)

    def test_nan_never_passes(self):
        tol = Tolerance(rel=1.0, abs=1e9)
        assert not tol.ok(math.nan, 1.0)
        assert not tol.ok(1.0, math.nan)

    def test_error_margin(self):
        tol = Tolerance(abs=1.0)
        assert tol.error(10.0, 10.5) == 0.0
        assert tol.error(10.0, 12.0) == pytest.approx(1.0)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            Tolerance(rel=-0.1)
        with pytest.raises(ValueError):
            Tolerance(abs=-1.0)

    def test_describe_names_the_bounds(self):
        assert Tolerance(rel=1e-6).describe() == "tol(rel=1e-06)"
        assert Tolerance(abs=0.15).describe() == "tol(abs=0.15)"
        assert Tolerance().describe() == "tol(exact)"

    def test_exact_constant_is_tight(self):
        assert EXACT.ok(77.608, 77.608 * (1 + 1e-7))
        assert not EXACT.ok(77.608, 77.608 * (1 + 1e-5))


class TestBand:
    def test_ratio_inside_band(self):
        band = Band(1.0, 1.7)
        assert band.ok(10.0, 14.0)
        assert not band.ok(10.0, 18.0)
        assert not band.ok(10.0, 9.0)

    def test_inclusive_edges(self):
        band = Band(0.5, 2.0)
        assert band.ok(10.0, 5.0) and band.ok(10.0, 20.0)

    def test_zero_expected_requires_zero_actual(self):
        band = Band(0.5, 2.0)
        assert band.ok(0.0, 0.0)
        assert not band.ok(0.0, 1e-9)

    def test_inverted_band_rejected(self):
        with pytest.raises(ValueError):
            Band(2.0, 1.0)

    def test_describe(self):
        assert Band(1.0, 1.7).describe() == "ratio in [1, 1.7]"
