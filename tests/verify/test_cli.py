"""The ``python -m repro.verify`` command-line interface."""

import json

import pytest

from repro.verify.cli import main

FAST = ["fig8_cpu", "fault_dropout"]


def _only(names):
    args = []
    for name in names:
        args += ["--only", name]
    return args


@pytest.fixture(scope="module")
def recorded_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli_golden")
    assert main(["record", "--golden-dir", str(d)] + _only(FAST)) == 0
    return d


class TestRecordAndList:
    def test_record_reports_written_paths(self, recorded_dir, capsys):
        main(["record", "--golden-dir", str(recorded_dir), "--only", "fig8_cpu"])
        out = capsys.readouterr().out
        assert "recorded" in out and "fig8_cpu.json" in out

    def test_list_shows_status(self, recorded_dir, capsys):
        assert main(["list", "--golden-dir", str(recorded_dir)]) == 0
        out = capsys.readouterr().out
        assert "fig8_cpu" in out and "[recorded" in out
        assert "NOT RECORDED" in out  # the ones we didn't record here

    def test_unknown_scenario_errors(self, recorded_dir):
        with pytest.raises(KeyError, match="valid"):
            main(["record", "--golden-dir", str(recorded_dir), "--only", "nope"])


class TestCheck:
    def test_passing_check_exits_zero(self, recorded_dir, capsys):
        code = main(["check", "--golden-dir", str(recorded_dir)] + _only(FAST))
        assert code == 0
        assert "0 divergence(s)" in capsys.readouterr().out

    def test_missing_trace_exits_nonzero(self, tmp_path, capsys):
        code = main(["check", "--golden-dir", str(tmp_path), "--only", "fig8_cpu"])
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_report_out_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main([
            "check", "--golden-dir", str(tmp_path), "--only", "fig8_cpu",
            "--report-out", str(out_path),
        ])
        assert code == 1
        data = json.loads(out_path.read_text())
        assert data["ok"] is False
        assert data["divergences"][0]["trace"] == "fig8_cpu"


class TestDiff:
    def test_diff_renders_table(self, recorded_dir, capsys):
        assert main(["diff", "--golden-dir", str(recorded_dir)] + _only(FAST)) == 0
        out = capsys.readouterr().out
        assert "fresh GFLOPS" in out and "fig8_cpu" in out


class TestCrossval:
    def test_crossval_runs_the_matrix(self, tmp_path, capsys):
        from repro.verify import differential, gridcases

        out_path = tmp_path / "crossval.json"
        code = main(["crossval", "--report-out", str(out_path)])
        assert code == 0
        expected = len(differential.MATRIX) + len(gridcases.GRID_MATRIX)
        assert f"{expected} trace(s) checked" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["ok"] is True

    def test_crossval_no_grid_skips_the_grid_cells(self, tmp_path, capsys):
        from repro.verify import differential

        out_path = tmp_path / "crossval.json"
        code = main(["crossval", "--no-grid", "--report-out", str(out_path)])
        assert code == 0
        expected = len(differential.MATRIX)
        assert f"{expected} trace(s) checked" in capsys.readouterr().out
