"""Canonical scenario catalogue integrity."""

import pytest

from repro.hpl.driver import Configuration
from repro.verify import scenarios
from repro.verify.scenarios import CATALOGUE, GOLDEN_SEED, get, names, small_cluster


class TestCatalogue:
    def test_every_configuration_has_a_fig8_entry(self):
        for config in Configuration:
            assert f"fig8_{config.value}" in CATALOGUE

    def test_fault_classes_all_covered(self):
        fault_entries = [n for n in names() if n.startswith("fault_")]
        assert {"fault_throttle", "fault_dropout", "fault_pcie"} <= set(fault_entries)
        # ... and every fault entry really carries a fault spec.
        for name in fault_entries:
            assert get(name).scenario().faults is not None

    def test_builders_produce_seeded_step_collecting_scenarios(self):
        for name in names():
            scenario = get(name).scenario()
            assert scenario.seed == GOLDEN_SEED, name
            assert scenario.collect_steps, name

    def test_builders_are_deterministic(self):
        a, b = get("fig8_acmlg_both").scenario(), get("fig8_acmlg_both").scenario()
        assert a.n == b.n and a.configuration is b.configuration

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(KeyError, match="fig8_cpu"):
            get("not_a_scenario")

    def test_names_match_catalogue(self):
        assert names() == list(CATALOGUE)


class TestSmallCluster:
    def test_one_node_per_cpu_spec(self):
        cluster = small_cluster()
        assert cluster.n_elements == 2  # one node = two elements

    def test_mixed_population(self):
        from repro.machine.presets import XEON_E5450, XEON_E5540

        cluster = small_cluster((XEON_E5540, XEON_E5450))
        assert cluster.n_elements == 4
        cpus = {cluster.element_spec(i).cpu.name for i in range(cluster.n_elements)}
        assert cpus == {XEON_E5540.name, XEON_E5450.name}

    def test_seeded_build_is_reproducible(self):
        a, b = small_cluster(), small_cluster()
        ra, rb = a.rate_table(), b.rate_table()
        assert (ra.gpu_peak == rb.gpu_peak).all()
