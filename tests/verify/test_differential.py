"""Analytic-vs-DES differential checking across the preset/fault matrix."""

import pytest

from repro.verify.differential import (
    MATRIX,
    DifferentialCase,
    DifferentialTolerances,
    run_case,
    run_matrix,
)
from repro.verify.tolerance import Band


class TestMatrixShape:
    def test_three_presets_times_fault_modes_plus_bcast_cells(self):
        assert len(MATRIX) == 9
        presets = {c.name.split("/")[0] for c in MATRIX}
        assert len(presets) == 3
        assert sum(c.faulted for c in MATRIX) == 3
        assert sum(not c.faulted for c in MATRIX) == 6
        # One clean cell per non-default broadcast algorithm.
        assert {c.bcast_algo for c in MATRIX} == {"binomial", "1ring", "1rm", "long"}
        assert all(not c.faulted for c in MATRIX if c.bcast_algo != "binomial")

    def test_names_are_unique(self):
        assert len({c.name for c in MATRIX}) == len(MATRIX)


@pytest.mark.parametrize("case", MATRIX, ids=lambda c: c.name.replace("/", "-"))
def test_twins_agree_within_declared_bands(case):
    outcome = run_case(case)
    assert outcome.report.ok, "\n" + outcome.report.render()
    # The DES run must actually sit above the closed form (the band's
    # lower edge is a real constraint, not slack).
    assert outcome.des.elapsed >= outcome.analytic.elapsed


def test_throttled_twins_tell_the_same_story():
    """The injector's rate scaling matches physically downclocked hardware:
    both twins slow down by a comparable factor under the same throttle."""
    clean = run_case(next(c for c in MATRIX if c.name == "e5540/clean"))
    hot = run_case(next(c for c in MATRIX if c.name == "e5540/throttled"))
    analytic_slowdown = hot.analytic.elapsed / clean.analytic.elapsed
    des_slowdown = hot.des.elapsed / clean.des.elapsed
    assert analytic_slowdown > 1.05 and des_slowdown > 1.05
    assert analytic_slowdown == pytest.approx(des_slowdown, rel=0.10)


def test_tight_band_produces_named_divergence():
    case = DifferentialCase(
        name="probe/tight",
        tolerances=DifferentialTolerances(elapsed_band=Band(1.0, 1.001)),
    )
    outcome = run_case(case)
    assert not outcome.report.ok
    div = next(d for d in outcome.report.divergences if d.metric == "elapsed")
    assert div.trace == "probe/tight"
    assert "ratio" in div.tolerance


def test_run_matrix_aggregates_everything():
    report = run_matrix()
    assert report.ok, "\n" + report.render()
    assert len(report.checked) == len(MATRIX)
