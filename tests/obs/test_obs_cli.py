"""``python -m repro.obs`` subcommands and the perf-regression sentinel."""

from __future__ import annotations

import json

import pytest

from repro.obs import RunLedger, history
from repro.obs.cli import main


@pytest.fixture
def run_pair(tmp_path):
    """Two finished ledgers under one root, with distinct metric values."""
    root = tmp_path / "runs"
    ledgers = {}
    for run_id, panels in (("run-a", 10), ("run-b", 15)):
        ledger = RunLedger.open(
            "fig9", root=root, run_id=run_id,
            flush_records=1, flush_interval=None, fsync=False,
        )
        ledger.telemetry.metrics.counter("panels").inc(panels)
        ledger.sink.complete("hpl/panel", "p0", 0.0, 1.0, n=panels)
        ledger.sink.instant("hpl/panel", "tick", 0.5)
        ledger.finish({"gflops": float(panels)})
        ledgers[run_id] = ledger
    return root, ledgers


def _entry(wall, *, quick=True, cpus=8, eps=200_000.0, sweep=2.0):
    return {
        "wall_unix": wall,
        "quick": quick,
        "jobs": None,
        "cpu_count": cpus,
        "code_version": "abc",
        "metrics": {
            "des_engine.events_per_second": eps,
            "fig9_sweep.serial_seconds": sweep,
        },
    }


class TestLedgerCommands:
    def test_list_shows_both_runs(self, run_pair, capsys):
        root, _ = run_pair
        assert main(["--root", str(root), "list"]) == 0
        out = capsys.readouterr().out
        assert "run-a" in out and "run-b" in out and "completed" in out

    def test_list_empty_root(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "list"]) == 0
        assert "no run ledgers" in capsys.readouterr().out

    def test_summary_completed_run(self, run_pair, capsys):
        root, _ = run_pair
        assert main(["--root", str(root), "summary", "run-a"]) == 0
        out = capsys.readouterr().out
        assert "status   completed" in out
        assert "1 spans, 1 instants" in out
        assert "hpl/panel" in out
        assert "panels" in out  # last metrics checkpoint
        assert "gflops: 10.0" in out

    def test_summary_of_in_flight_run(self, tmp_path, capsys):
        ledger = RunLedger.open(
            "dead", root=tmp_path, run_id="dead",
            flush_records=1, flush_interval=None, fsync=False,
        )
        ledger.sink.complete("t", "x", 0.0, 1.0)
        # never finished — the post-mortem path
        assert main(["--root", str(tmp_path), "summary", "dead"]) == 0
        out = capsys.readouterr().out
        assert "status   in-flight" in out
        assert "run is in flight or died" in out
        ledger.finish()

    def test_summary_accepts_latest_and_paths(self, run_pair, capsys):
        root, ledgers = run_pair
        assert main(["--root", str(root), "summary", "latest"]) == 0
        assert main(["--root", str(root), "summary", str(ledgers["run-a"].directory)]) == 0

    def test_missing_run_exits_2(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "summary", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_tail_prints_recent_records(self, run_pair, capsys):
        root, _ = run_pair
        assert main(["--root", str(root), "tail", "run-a", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "instant" in out and "p0" in out

    def test_diff_compares_last_checkpoints(self, run_pair, capsys):
        root, _ = run_pair
        assert main(["--root", str(root), "diff", "run-a", "run-b"]) == 0
        out = capsys.readouterr().out
        assert "panels" in out
        assert "+50.0%" in out  # 10 -> 15

    def test_trace_exports_chrome_json(self, run_pair, tmp_path, capsys):
        root, _ = run_pair
        out_path = tmp_path / "trace.json"
        assert main(["--root", str(root), "trace", "run-a", "--out", str(out_path)]) == 0
        events = json.loads(out_path.read_text())
        assert any(e.get("ph") == "X" for e in events)

    def test_trace_defaults_into_run_directory(self, run_pair, capsys):
        root, ledgers = run_pair
        assert main(["--root", str(root), "trace", "run-b"]) == 0
        assert (ledgers["run-b"].directory / "trace.json").exists()


class TestRegressCommand:
    def test_no_history_file(self, tmp_path, capsys):
        assert main(["regress", "--history", str(tmp_path / "none.jsonl")]) == 0
        assert "no history recorded" in capsys.readouterr().out

    def test_single_entry_is_not_enough(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        history.append_entry(_entry(1.0), path)
        assert main(["regress", "--history", str(path)]) == 0
        assert "not enough history" in capsys.readouterr().out

    def test_steady_history_passes(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        for wall in range(3):
            history.append_entry(_entry(float(wall)), path)
        assert main(["regress", "--history", str(path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_throughput_drop_flags_and_exits_1(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        for wall in range(3):
            history.append_entry(_entry(float(wall)), path)
        history.append_entry(_entry(3.0, eps=100_000.0), path)  # -50% throughput
        assert main(["regress", "--history", str(path)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err and "des_engine.events_per_second" in err

    def test_warn_only_reports_but_exits_0(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        history.append_entry(_entry(0.0), path)
        history.append_entry(_entry(1.0, sweep=10.0), path)  # 5x slower sweep
        assert main(["regress", "--history", str(path), "--warn-only"]) == 0
        err = capsys.readouterr().err
        assert "REGRESSION" in err and "--warn-only" in err

    def test_threshold_is_configurable(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        history.append_entry(_entry(0.0), path)
        history.append_entry(_entry(1.0, sweep=2.2), path)  # +10% slower
        assert main(["regress", "--history", str(path)]) == 0  # under default 25%
        assert main(["regress", "--history", str(path), "--threshold", "0.05"]) == 1


class TestHistoryModel:
    def test_entry_from_report_flattens_tracked_metrics(self):
        report = {
            "meta": {"quick": True, "jobs": 4, "cpu_count": 8, "code_version": "abc"},
            "des_engine": {"events_per_second": 123456.0},
            "fig9_sweep": {"serial_seconds": 3.5},
            "unrelated": {"events_per_second": 1.0},
        }
        entry = history.entry_from_report(report, wall_unix=42.0)
        assert entry["wall_unix"] == 42.0
        assert entry["quick"] is True and entry["cpu_count"] == 8
        assert entry["metrics"] == {
            "des_engine.events_per_second": 123456.0,
            "fig9_sweep.serial_seconds": 3.5,
        }

    def test_incomparable_entries_are_excluded_from_baseline(self):
        entries = [
            _entry(0.0, cpus=64, eps=1_000_000.0),  # beefy CI box: not a baseline
            _entry(1.0, eps=200_000.0),
            _entry(2.0, eps=190_000.0),
        ]
        regressions, note = history.detect_regressions(entries)
        assert regressions == []
        assert "1 comparable prior entry" in note

    def test_all_incomparable_gives_empty_with_note(self):
        entries = [_entry(0.0, quick=False), _entry(1.0, quick=True)]
        regressions, note = history.detect_regressions(entries)
        assert regressions == []
        assert "no comparable baseline" in note

    def test_rolling_window_limits_baseline(self):
        # Old slow entries fall out of the window; the recent fast median rules.
        entries = [_entry(float(i), sweep=10.0) for i in range(3)]
        entries += [_entry(float(i + 3), sweep=1.0) for i in range(5)]
        entries.append(_entry(99.0, sweep=1.5))  # +50% vs recent window of 1.0s
        regressions, _ = history.detect_regressions(entries, window=5)
        assert [r.metric for r in regressions] == ["fig9_sweep.serial_seconds"]
        assert regressions[0].baseline == 1.0

    def test_improvement_never_flags(self):
        entries = [_entry(0.0), _entry(1.0, eps=400_000.0, sweep=1.0)]
        regressions, _ = history.detect_regressions(entries)
        assert regressions == []

    def test_load_history_skips_torn_tail(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history.append_entry(_entry(0.0), path)
        with open(path, "a") as handle:
            handle.write('{"wall_unix": 1.0, "metr')
        entries = history.load_history(path)
        assert len(entries) == 1

    def test_describe_names_direction(self):
        regression = history.Regression(
            "des_engine.events_per_second", "higher", 200_000.0, 100_000.0, 0.5
        )
        assert "fell" in regression.describe()
