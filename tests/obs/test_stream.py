"""StreamingSink / TeeSink / SamplingSink and the tolerant JSONL readers."""

from __future__ import annotations

import json

import pytest

from repro.obs import RecordingSink, Telemetry
from repro.obs.stream import (
    SamplingSink,
    StreamingSink,
    TeeSink,
    merge_streams,
    read_stream,
    stream_paths,
)


class TestStreamingSink:
    def test_records_survive_flush_and_parse(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = StreamingSink(path, flush_records=100, flush_interval=None)
        sink.complete("hpl/panel", "p0", 0.0, 1.0, k=1)
        sink.instant("hpl/panel", "tick", 0.5)
        sink.flush()
        spans, instants, truncated = read_stream(path)
        assert not truncated
        ((span,), (inst,)) = (spans, instants)
        assert (span.track, span.name, span.start, span.end) == ("hpl/panel", "p0", 0.0, 1.0)
        assert span.args == {"k": 1}
        assert (inst.track, inst.name, inst.ts) == ("hpl/panel", "tick", 0.5)

    def test_begin_end_pairs_like_recording_sink(self, tmp_path):
        sink = StreamingSink(tmp_path / "s.jsonl", flush_interval=None)
        sink.begin("t", "x", 0.0, a=1)
        sink.begin("t", "x", 1.0)
        sink.end("t", "x", 2.0)
        assert sink.open_spans() == [("t", "x")]
        sink.end("t", "x", 3.0, b=2)
        sink.close()
        spans, _, _ = read_stream(tmp_path / "s.jsonl")
        assert [(s.start, s.end) for s in spans] == [(1.0, 2.0), (0.0, 3.0)]
        assert spans[1].args == {"a": 1, "b": 2}

    def test_unmatched_end_raises(self, tmp_path):
        with pytest.raises(ValueError):
            StreamingSink(tmp_path / "s.jsonl").end("t", "x", 1.0)

    def test_buffer_flushes_at_flush_records(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = StreamingSink(path, flush_records=3, flush_interval=None, fsync=False)
        sink.complete("t", "a", 0.0, 1.0)
        sink.complete("t", "b", 1.0, 2.0)
        assert path.read_text() == ""  # still buffered
        sink.complete("t", "c", 2.0, 3.0)
        assert len(path.read_text().splitlines()) == 3  # threshold flushed

    def test_unflushed_tail_lost_flushed_prefix_kept(self, tmp_path):
        # The crash contract: whatever was flushed parses; the buffer is gone.
        path = tmp_path / "s.jsonl"
        sink = StreamingSink(path, flush_records=2, flush_interval=None)
        for i in range(5):
            sink.complete("t", f"s{i}", float(i), float(i + 1))
        # 4 records flushed (two batches of 2), the 5th still buffered.
        spans, _, truncated = read_stream(path)
        assert [s.name for s in spans] == ["s0", "s1", "s2", "s3"]
        assert not truncated

    def test_rotation_produces_ordered_family(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = StreamingSink(path, flush_records=1, flush_interval=None, max_bytes=120)
        for i in range(8):
            sink.complete("t", f"s{i}", float(i), float(i + 1))
        sink.close()
        assert sink.rotations >= 1
        family = stream_paths(path)
        assert family[-1] == path and len(family) == sink.rotations + 1
        spans, _, truncated = read_stream(path)
        assert [s.name for s in spans] == [f"s{i}" for i in range(8)]
        assert not truncated

    def test_truncated_tail_is_flagged_not_fatal(self, tmp_path):
        path = tmp_path / "s.jsonl"
        sink = StreamingSink(path, flush_records=1, flush_interval=None)
        sink.complete("t", "whole", 0.0, 1.0)
        sink.close()
        with open(path, "a") as handle:
            handle.write('{"t": "span", "track": "t", "name": "torn", "sta')
        spans, _, truncated = read_stream(path)
        assert [s.name for s in spans] == ["whole"]
        assert truncated

    def test_on_flush_hook_fires(self, tmp_path):
        calls = []
        sink = StreamingSink(
            tmp_path / "s.jsonl", flush_records=1, flush_interval=None,
            on_flush=lambda: calls.append(1),
        )
        sink.complete("t", "a", 0.0, 1.0)
        assert calls == [1]

    def test_closed_sink_rejects_records(self, tmp_path):
        sink = StreamingSink(tmp_path / "s.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.complete("t", "a", 0.0, 1.0)

    def test_bad_flush_records_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            StreamingSink(tmp_path / "s.jsonl", flush_records=0)


class TestTeeSink:
    def test_fans_out_to_all_children(self, tmp_path):
        recording = RecordingSink()
        streaming = StreamingSink(tmp_path / "s.jsonl", flush_interval=None)
        tee = TeeSink(streaming, recording)
        tee.begin("t", "x", 0.0)
        tee.end("t", "x", 1.0)
        tee.complete("t", "y", 1.0, 2.0)
        tee.instant("t", "m", 1.5)
        tee.close()
        assert [s.name for s in recording.spans] == ["x", "y"]
        spans, instants, _ = read_stream(tmp_path / "s.jsonl")
        assert [s.name for s in spans] == ["x", "y"]
        assert len(instants) == 1

    def test_enabled_follows_children(self, tmp_path):
        from repro.obs import NULL_SINK

        assert TeeSink(NULL_SINK).enabled is False
        assert TeeSink(NULL_SINK, RecordingSink()).enabled is True

    def test_telemetry_chrome_trace_finds_recording_through_tee(self, tmp_path):
        recording = RecordingSink()
        tee = TeeSink(StreamingSink(tmp_path / "s.jsonl", flush_interval=None), recording)
        telemetry = Telemetry(sink=tee)
        tee.complete("a/b", "x", 0.0, 1.0)
        events = telemetry.chrome_trace()
        assert any(e["ph"] == "X" for e in events)


class TestSamplingSink:
    def test_keeps_every_nth_per_key_deterministically(self):
        child = RecordingSink()
        sampler = SamplingSink(child, every=3)
        for i in range(9):
            sampler.complete("t", "hot", float(i), float(i + 1))
        sampler.complete("t", "rare", 0.0, 1.0)  # first of a new key: kept
        assert [s.start for s in child.spans if s.name == "hot"] == [0.0, 3.0, 6.0]
        assert sum(1 for s in child.spans if s.name == "rare") == 1
        assert sampler.dropped == 6

    def test_begin_end_pairs_sampled_as_units(self):
        child = RecordingSink()
        sampler = SamplingSink(child, every=2)
        for i in range(4):
            sampler.begin("t", "x", float(i))
            sampler.end("t", "x", float(i) + 0.5)
        assert [s.start for s in child.spans] == [0.0, 2.0]
        assert child.open_spans() == []  # nothing half-forwarded

    def test_instants_sampled_independently(self):
        child = RecordingSink()
        sampler = SamplingSink(child, every=2)
        for i in range(4):
            sampler.instant("t", "m", float(i))
        assert [i.ts for i in child.instants] == [0.0, 2.0]

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError):
            SamplingSink(RecordingSink(), every=0)


class TestMergeStreams:
    def test_labels_prefix_tracks_and_order_by_time(self, tmp_path):
        main = StreamingSink(tmp_path / "main.jsonl", flush_interval=None)
        main.complete("hpl/panel", "p1", 1.0, 2.0)
        main.close()
        worker = StreamingSink(tmp_path / "w1.jsonl", flush_interval=None)
        worker.complete("hpl/panel", "p0", 0.0, 1.0)
        worker.close()
        spans, _, truncated = merge_streams(
            [("", tmp_path / "main.jsonl"), ("worker-9", tmp_path / "w1.jsonl")]
        )
        assert not truncated
        assert [(s.track, s.name) for s in spans] == [
            ("worker-9/hpl/panel", "p0"),
            ("hpl/panel", "p1"),
        ]

    def test_missing_shard_is_empty_not_fatal(self, tmp_path):
        spans, instants, truncated = merge_streams([("", tmp_path / "absent.jsonl")])
        assert spans == [] and instants == [] and not truncated

    def test_lines_are_plain_json(self, tmp_path):
        sink = StreamingSink(tmp_path / "s.jsonl", flush_interval=None)
        sink.complete("t", "x", 0.0, 1.0, note="hi")
        sink.close()
        (line,) = (tmp_path / "s.jsonl").read_text().splitlines()
        record = json.loads(line)
        assert record == {
            "t": "span", "track": "t", "name": "x",
            "start": 0.0, "end": 1.0, "args": {"note": "hi"},
        }
