"""SIGKILL a streaming run mid-flight; the ledger must stay readable.

This is the tentpole's whole point exercised end to end: a subprocess opens
a :class:`repro.obs.RunLedger`, streams spans with per-record flushing,
tells us where the ledger lives, and then blocks forever.  We SIGKILL it —
no atexit, no finally, no summary — and assert that :func:`load_run`
parses the directory and ``python -m repro.obs summary`` reports the
partial run instead of crashing.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.obs.cli import main as obs_main
from repro.obs.ledger import load_run

#: The src/ directory the victim subprocess must import repro from.
REPRO_SRC = str(Path(repro.__file__).resolve().parents[1])

VICTIM = textwrap.dedent(
    """
    import sys, time
    from repro.obs import RunLedger

    ledger = RunLedger.open(
        "crash-victim", root=sys.argv[1],
        flush_records=1, flush_interval=None,
    )
    telemetry = ledger.telemetry
    telemetry.metrics.counter("panels_done").inc(3)
    for i in range(5):
        telemetry.sink.complete("hpl/panel", f"p{i}", float(i), float(i) + 1.0)
    print(ledger.directory, flush=True)   # parent: safe to kill now
    time.sleep(300)                        # never reached alive
    ledger.finish({"should": "never happen"})
    """
)


@pytest.fixture
def killed_run(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [REPRO_SRC, env.get("PYTHONPATH", "")])
    )
    process = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(tmp_path / "runs")],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        directory = process.stdout.readline().strip()
        assert directory, process.stderr.read()
        process.kill()  # SIGKILL: no cleanup of any kind runs
        process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL
        yield directory
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


class TestCrashSafety:
    def test_ledger_parses_after_sigkill(self, killed_run):
        view = load_run(killed_run)
        assert view.status == "in-flight"  # no summary.json was ever written
        assert view.summary is None
        # Every record was flushed (flush_records=1), so nothing was lost.
        assert [s.name for s in view.spans] == [f"p{i}" for i in range(5)]
        assert view.manifest["name"] == "crash-victim"

    def test_metrics_checkpoints_survive(self, killed_run):
        view = load_run(killed_run)
        assert view.last_metrics().get("panels_done") == 3

    def test_obs_summary_reports_partial_run(self, killed_run, capsys):
        root = os.path.dirname(killed_run)
        assert obs_main(["--root", root, "summary", "latest"]) == 0
        out = capsys.readouterr().out
        assert "status   in-flight" in out
        assert "5 spans" in out
        assert "run is in flight or died" in out

    def test_obs_tail_reads_the_dead_stream(self, killed_run, capsys):
        root = os.path.dirname(killed_run)
        assert obs_main(["--root", root, "tail", "latest", "-n", "3"]) == 0
        assert "p4" in capsys.readouterr().out
