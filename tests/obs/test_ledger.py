"""RunLedger round trips, crash tolerance, worker-shard merge, resolution."""

from __future__ import annotations

import json

import pytest

from repro.obs import Telemetry
from repro.obs.ledger import (
    RunLedger,
    latest_run,
    load_run,
    resolve_run,
    run_dirs,
)
from repro.obs.stream import StreamingSink


def _open(tmp_path, name="test-run", **kwargs):
    kwargs.setdefault("flush_records", 1)
    kwargs.setdefault("flush_interval", None)
    kwargs.setdefault("fsync", False)
    return RunLedger.open(name, root=tmp_path / "runs", **kwargs)


class TestRunLedgerLifecycle:
    def test_manifest_written_before_any_work(self, tmp_path):
        ledger = _open(tmp_path, config={"quick": True})
        manifest = json.loads((ledger.directory / "manifest.json").read_text())
        assert manifest["name"] == "test-run"
        assert manifest["config"] == {"quick": True}
        assert manifest["code_version"]
        assert manifest["run_id"] == ledger.run_id == ledger.directory.name
        ledger.finish()

    def test_round_trip_completed_run(self, tmp_path):
        ledger = _open(tmp_path)
        telemetry = ledger.telemetry
        with telemetry.wall_span("bench", "fig9"):
            telemetry.metrics.counter("panels").inc(3)
        telemetry.sink.instant("bench", "milestone", 0.5)
        ledger.finish({"gflops": 42.0})

        view = load_run(ledger.directory)
        assert view.status == "completed"
        assert view.summary["summary"] == {"gflops": 42.0}
        assert not view.truncated
        assert view.span_counts() == {"bench": 1}
        assert len(view.instants) == 1
        assert view.last_metrics().get("panels") == 3
        assert view.summary["records_written"] == 2

    def test_annotate_merges_into_manifest(self, tmp_path):
        ledger = _open(tmp_path)
        ledger.annotate(scenario_hash="abc123", machine="cabinet-1")
        manifest = json.loads((ledger.directory / "manifest.json").read_text())
        assert manifest["scenario_hash"] == "abc123"
        assert manifest["machine"] == "cabinet-1"
        ledger.finish()

    def test_unfinished_run_reads_as_in_flight(self, tmp_path):
        ledger = _open(tmp_path)
        ledger.sink.complete("hpl", "panel", 0.0, 1.0)
        ledger.sink.flush()
        # No finish(): exactly what a crashed or live run looks like.
        view = load_run(ledger.directory)
        assert view.status == "in-flight"
        assert view.summary is None
        assert [s.name for s in view.spans] == ["panel"]
        ledger.finish()

    def test_fail_records_the_error(self, tmp_path):
        ledger = _open(tmp_path)
        ledger.fail("ValueError: boom")
        view = load_run(ledger.directory)
        assert view.status == "failed"
        assert view.summary["summary"]["error"] == "ValueError: boom"

    def test_context_manager_finishes_or_fails(self, tmp_path):
        with _open(tmp_path) as ledger:
            pass
        assert load_run(ledger.directory).status == "completed"

        with pytest.raises(RuntimeError):
            with _open(tmp_path) as ledger:
                raise RuntimeError("kaput")
        view = load_run(ledger.directory)
        assert view.status == "failed"
        assert "kaput" in view.summary["summary"]["error"]

    def test_finish_is_idempotent(self, tmp_path):
        ledger = _open(tmp_path)
        first = ledger.finish({"a": 1})
        second = ledger.finish({"b": 2})
        assert first == second
        assert load_run(ledger.directory).summary["summary"] == {"a": 1}

    def test_run_id_collisions_get_suffixes(self, tmp_path):
        a = _open(tmp_path, run_id="fixed")
        b = _open(tmp_path, run_id="fixed")
        assert a.directory != b.directory
        assert b.directory.name == "fixed-1"
        a.finish()
        b.finish()

    def test_metrics_checkpoints_stream_per_flush(self, tmp_path):
        ledger = _open(tmp_path, flush_records=1)
        ledger.telemetry.metrics.counter("events").inc(5)
        ledger.sink.complete("t", "a", 0.0, 1.0)  # flush -> checkpoint
        ledger.telemetry.metrics.counter("events").inc(2)
        ledger.sink.complete("t", "b", 1.0, 2.0)
        view = load_run(ledger.directory)
        assert [c["metrics"]["events"] for c in view.metrics] == [5, 7]
        ledger.finish()


class TestWorkerShards:
    def test_worker_shards_merge_with_labels(self, tmp_path):
        ledger = _open(tmp_path)
        ledger.sink.complete("bench", "sweep", 0.0, 9.0)
        shard = StreamingSink(
            ledger.directory / "spans-worker-4242.jsonl",
            flush_records=1, flush_interval=None, fsync=False,
        )
        shard.complete("hpl/panel", "p0", 1.0, 2.0)
        shard.close()
        (ledger.directory / "metrics-worker-4242.json").write_text('{"panels": 7}')
        ledger.finish()

        view = load_run(ledger.directory)
        assert view.shards == ["spans-worker-4242.jsonl"]
        assert view.summary["worker_shards"] == ["spans-worker-4242.jsonl"]
        tracks = {s.track for s in view.spans}
        assert tracks == {"bench", "worker-4242/hpl/panel"}
        assert view.worker_metrics == {"worker-4242": {"panels": 7}}

    def test_chrome_trace_covers_worker_tracks(self, tmp_path):
        ledger = _open(tmp_path)
        shard = StreamingSink(
            ledger.directory / "spans-worker-1.jsonl",
            flush_records=1, flush_interval=None, fsync=False,
        )
        shard.complete("hpl/panel", "p0", 0.0, 1.0)
        shard.close()
        ledger.finish()
        events = load_run(ledger.directory).chrome_trace_events()
        assert any(e.get("ph") == "X" for e in events)


class TestLoadRunTolerance:
    def test_requires_only_the_manifest(self, tmp_path):
        directory = tmp_path / "bare"
        directory.mkdir()
        (directory / "manifest.json").write_text('{"run_id": "bare", "name": "x"}')
        view = load_run(directory)
        assert view.status == "in-flight"
        assert view.spans == [] and view.metrics == []

    def test_non_ledger_directory_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path)

    def test_torn_stream_tail_sets_truncated(self, tmp_path):
        ledger = _open(tmp_path)
        ledger.sink.complete("t", "whole", 0.0, 1.0)
        ledger.sink.flush()
        with open(ledger.directory / "spans-main.jsonl", "a") as handle:
            handle.write('{"t": "span", "track": "t", "na')
        view = load_run(ledger.directory)
        assert view.truncated
        assert [s.name for s in view.spans] == ["whole"]
        ledger.finish()

    def test_shard_dir_points_workers_at_the_run_directory(self, tmp_path):
        ledger = _open(tmp_path)
        assert ledger.telemetry.shard_dir == ledger.directory
        assert Telemetry().shard_dir is None
        ledger.finish()


class TestResolution:
    def test_run_dirs_latest_and_resolve(self, tmp_path):
        root = tmp_path / "runs"
        a = RunLedger.open("alpha", root=root, run_id="a", fsync=False)
        a.manifest["created_unix"] = 100.0
        a.annotate()
        a.finish()
        b = RunLedger.open("beta", root=root, run_id="b", fsync=False)
        b.manifest["created_unix"] = 200.0
        b.annotate()
        b.finish()

        assert [p.name for p in run_dirs(root)] == ["a", "b"]
        assert latest_run(root).name == "b"
        assert resolve_run("latest", root).name == "b"
        assert resolve_run("a", root) == a.directory
        assert resolve_run(str(b.directory), root) == b.directory
        with pytest.raises(FileNotFoundError):
            resolve_run("missing", root)

    def test_empty_root_resolves_to_nothing(self, tmp_path):
        assert run_dirs(tmp_path / "nope") == []
        assert latest_run(tmp_path / "nope") is None
        with pytest.raises(FileNotFoundError):
            resolve_run("latest", tmp_path / "nope")
