"""Integration tests: the instrumented adaptive/pipeline/sim/HPL layers.

Includes the acceptance-criterion check that telemetry is invisible to the
physics: GSplit trajectories and Linpack results are bit-identical with
telemetry enabled, disabled, or ambient.
"""

import numpy as np

from repro import obs
from repro.core.adaptive import update_overhead_seconds
from repro.core.hybrid_dgemm import HybridDgemm
from repro.session import Scenario, run as run_scenario
from repro.sim import Simulator
from repro.util.units import dgemm_flops
from tests.conftest import build_adaptive_mapper, build_element


def make_engine(n, pipelined=False, telemetry=None):
    element = build_element(telemetry=telemetry)
    mapper = build_adaptive_mapper(
        element, 2 * n, k=2 * n, slack=1.0, telemetry=telemetry
    )
    return HybridDgemm(element, mapper, pipelined=pipelined, jitter=False)


class TestSimulatorStats:
    def test_counts_and_clock(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        stats = sim.stats()
        assert stats.now == 2.0
        assert stats.events_processed >= 2
        assert stats.events_scheduled >= stats.events_processed
        assert stats.max_queue_depth >= 1
        assert stats.wall_seconds >= 0.0


class TestAdaptiveInstrumentation:
    def test_lookup_hit_miss_and_update_series(self):
        telemetry = obs.Telemetry()
        engine = make_engine(4096, telemetry=telemetry)
        mapper = engine.mapper

        mapper.gsplit(dgemm_flops(4096, 4096, 4096))  # nothing written yet
        assert telemetry.metrics.counter("adaptive.bin_lookups").value(
            result="miss", bin=mapper.database_g.bin_index(dgemm_flops(4096, 4096, 4096))
        ) == 1.0

        for _ in range(3):
            engine.run_to_completion(4096, 4096, 4096)

        metrics = telemetry.metrics
        assert metrics.counter("adaptive.updates").value() == 3.0
        assert metrics.counter("adaptive.overhead_seconds").value() == (
            3 * update_overhead_seconds()
        )
        gsplits = metrics.series("adaptive.gsplit").points()
        assert [x for x, _ in gsplits] == [1.0, 2.0, 3.0]
        assert all(0.0 < y <= 1.0 for _, y in gsplits)
        # Lookups after the first update hit the written bin.
        assert metrics.counter("adaptive.bin_lookups").value(
            result="hit", bin=mapper.database_g.bin_index(dgemm_flops(4096, 4096, 4096))
        ) >= 2.0
        # Level 2: one csplit series point per core per update.
        for core in range(3):
            assert len(metrics.series("adaptive.csplit").points(core=core)) == 3


class TestPipelineInstrumentation:
    def test_spans_transitions_and_occupancy(self):
        telemetry = obs.Telemetry()
        engine = make_engine(10240, pipelined=True, telemetry=telemetry)
        engine.run_to_completion(10240, 10240, 10240)

        tracks = telemetry.sink.tracks()
        assert any(track.endswith("/CT") for track in tracks)
        assert any(track.endswith("/NT") for track in tracks)
        assert telemetry.sink.open_spans() == []  # everything closed at finish

        metrics = telemetry.metrics
        tasks = metrics.counter("pipeline.tasks_executed").total()
        assert tasks >= 4  # N=10240 exceeds the 8192 texture limit -> real queue
        assert metrics.counter("pipeline.transitions").value(
            controller="CT", state="EO"
        ) >= tasks
        occupancy = metrics.series("pipeline.stage_occupancy")
        eo = occupancy.last(executor="pipelined", stage="EO")
        assert eo is not None and 0.0 < eo[1] <= 1.0

    def test_taskqueue_reuse_counters(self):
        telemetry = obs.Telemetry()
        engine = make_engine(10240, pipelined=True, telemetry=telemetry)
        engine.run_to_completion(10240, 10240, 10240)
        metrics = telemetry.metrics
        assert metrics.counter("taskqueue.queues").value() == 1.0
        assert metrics.counter("taskqueue.tasks").value() == metrics.counter(
            "pipeline.tasks_executed"
        ).total()
        # Bounce-corner-turn reuse: consecutive tasks share operands.
        assert metrics.counter("taskqueue.reuse_hits").value() > 0
        assert metrics.counter("taskqueue.input_bytes").value() < metrics.counter(
            "taskqueue.naive_input_bytes"
        ).value()


class TestHplInstrumentation:
    def test_progress_callback_and_panel_metrics(self):
        telemetry = obs.Telemetry()
        steps = []
        result = run_scenario(
            Scenario(scheduler="acmlg_both", n=11500),
            progress=steps.append,
            telemetry=telemetry,
        )
        assert steps, "progress callback never fired"
        metrics = telemetry.metrics
        assert metrics.counter("hpl.panels").value() == len(steps)
        assert metrics.gauge("hpl.gflops").value() == result.gflops
        cum = metrics.series("hpl.cum_gflops").points()
        assert len(cum) == len(steps)
        final = metrics.series("hpl.final_gflops").last(configuration="acmlg_both")
        assert final == (11500.0, result.gflops)
        # Per-panel spans land on the hpl/* tracks.
        tracks = set(telemetry.sink.tracks())
        assert {"hpl/panel", "hpl/update", "hpl/comm"} <= tracks


class TestBitIdentical:
    """Acceptance criterion: telemetry must not perturb simulated results."""

    def run_trajectory(self, telemetry):
        engine = make_engine(4096, telemetry=telemetry)
        gflops = [engine.run_to_completion(4096, 4096, 4096).gflops for _ in range(5)]
        return gflops, engine.mapper.database_g.values().copy()

    def test_gsplit_trajectory_identical_with_and_without_telemetry(self):
        base_gflops, base_db = self.run_trajectory(None)
        inst_gflops, inst_db = self.run_trajectory(obs.Telemetry())
        assert inst_gflops == base_gflops
        assert np.array_equal(inst_db, base_db)

    def test_ambient_telemetry_is_also_invisible(self):
        base_gflops, base_db = self.run_trajectory(None)
        with obs.use(obs.Telemetry()):
            amb_gflops, amb_db = self.run_trajectory(None)
        assert amb_gflops == base_gflops
        assert np.array_equal(amb_db, base_db)

    def test_linpack_result_identical(self):
        scenario = Scenario(scheduler="acmlg_both", n=11500)
        plain = run_scenario(scenario)
        traced = run_scenario(scenario, telemetry=obs.Telemetry())
        assert traced.gflops == plain.gflops
        assert traced.elapsed == plain.elapsed
