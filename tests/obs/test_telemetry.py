"""Unit tests for repro.obs.telemetry and the Chrome-trace/flame exporters."""

import json

import pytest

from repro import obs
from repro.obs.export import chrome_trace_events, flame_summary
from repro.obs.telemetry import (
    NULL_SINK,
    InstantRecord,
    RecordingSink,
    SpanRecord,
    Telemetry,
)
from repro.sim import Simulator


class TestSinks:
    def test_null_sink_is_disabled_noop(self):
        NULL_SINK.begin("a", "x", 0.0)
        NULL_SINK.end("a", "x", 1.0)
        NULL_SINK.complete("a", "x", 0.0, 1.0)
        NULL_SINK.instant("a", "x", 0.5)
        assert NULL_SINK.enabled is False

    def test_recording_begin_end_pairs(self):
        sink = RecordingSink()
        sink.begin("e0/CT", "Input", 0.0, task=0)
        sink.end("e0/CT", "Input", 1.5, bytes=64)
        (span,) = sink.spans
        assert (span.track, span.name, span.start, span.end) == ("e0/CT", "Input", 0.0, 1.5)
        assert span.args == {"task": 0, "bytes": 64}
        assert span.duration == 1.5

    def test_nested_same_name_spans_are_a_stack(self):
        sink = RecordingSink()
        sink.begin("t", "outer", 0.0)
        sink.begin("t", "outer", 1.0)
        sink.end("t", "outer", 2.0)
        sink.end("t", "outer", 3.0)
        assert [(s.start, s.end) for s in sink.spans] == [(1.0, 2.0), (0.0, 3.0)]

    def test_unmatched_end_raises(self):
        with pytest.raises(ValueError):
            RecordingSink().end("t", "x", 1.0)

    def test_open_spans_reports_leaks(self):
        sink = RecordingSink()
        sink.begin("t", "x", 0.0)
        assert sink.open_spans() == [("t", "x")]

    def test_tracks_first_appearance_order(self):
        sink = RecordingSink()
        sink.complete("b", "x", 0.0, 1.0)
        sink.instant("a", "m", 0.5)
        sink.complete("b", "y", 1.0, 2.0)
        assert sink.tracks() == ["b", "a"]


class TestRecordingRing:
    def test_max_records_caps_spans_and_counts_drops(self):
        sink = RecordingSink(max_records=3)
        for i in range(5):
            sink.complete("t", f"s{i}", float(i), float(i + 1))
        assert [s.name for s in sink.spans] == ["s2", "s3", "s4"]  # oldest evicted
        assert sink.dropped == 2

    def test_instants_capped_independently(self):
        sink = RecordingSink(max_records=2)
        sink.complete("t", "span", 0.0, 1.0)
        for i in range(3):
            sink.instant("t", "m", float(i))
        assert len(sink.spans) == 1  # span store unaffected by instant evictions
        assert [inst.ts for inst in sink.instants] == [1.0, 2.0]
        assert sink.dropped == 1

    def test_default_cap_and_opt_out(self):
        assert RecordingSink().spans.maxlen == obs.DEFAULT_MAX_RECORDS
        assert RecordingSink(max_records=None).spans.maxlen is None
        with pytest.raises(ValueError):
            RecordingSink(max_records=0)

    def test_sync_sink_metrics_exposes_ring_health(self):
        t = Telemetry(sink=RecordingSink(max_records=1))
        t.sink.complete("t", "a", 0.0, 1.0)
        t.sink.complete("t", "b", 1.0, 2.0)
        t.sync_sink_metrics()
        assert t.metrics.gauge("obs.sink.spans").value() == 1
        assert t.metrics.gauge("obs.sink.dropped").value() == 1

    def test_write_metrics_includes_sink_health(self, tmp_path):
        t = Telemetry()
        t.sink.complete("t", "a", 0.0, 1.0)
        snapshot = json.loads(t.write_metrics(tmp_path / "m.json").read_text())
        assert {"obs.sink.spans", "obs.sink.dropped"} <= set(snapshot)

    def test_capped_ring_still_exports(self):
        sink = RecordingSink(max_records=2)
        t = Telemetry(sink=sink)
        for i in range(4):
            sink.complete("a/b", f"s{i}", float(i), float(i + 1))
        events = [e for e in t.chrome_trace() if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["s2", "s3"]


class TestTelemetryHandle:
    def test_defaults(self):
        t = Telemetry()
        assert isinstance(t.sink, RecordingSink)
        assert t.enabled is True

    def test_wall_span_records_positive_duration(self):
        t = Telemetry()
        with t.wall_span("bench", "fig", quick=True):
            pass
        (span,) = t.sink.spans
        assert span.name == "fig" and span.duration >= 0.0
        assert span.args == {"quick": True}

    def test_record_simulator_publishes_gauges(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)

        sim.process(proc())
        sim.run()
        t = Telemetry()
        t.record_simulator(sim)
        assert t.metrics.gauge("sim.now").value() == 3.0
        assert t.metrics.gauge("sim.events_processed").value() >= 2


class TestAmbientContext:
    def test_default_is_none(self):
        assert obs.current() is None

    def test_use_installs_and_restores(self):
        t = Telemetry()
        with obs.use(t) as got:
            assert got is t
            assert obs.current() is t
            inner = Telemetry()
            with obs.use(inner):
                assert obs.current() is inner
            assert obs.current() is t
        assert obs.current() is None

    def test_use_none_is_noop(self):
        with obs.use(None) as got:
            assert got is None
            assert obs.current() is None


class TestChromeExport:
    def make_events(self):
        spans = [
            SpanRecord("e0/CT", "Input", 0.0, 1.0, {"task": 0}),
            SpanRecord("e0/NT", "N-Input", 0.5, 1.5),
            SpanRecord("bench", "fig10", 0.0, 2.0),
        ]
        instants = [InstantRecord("e0/CT", "tick", 0.25, {"step": 1})]
        return chrome_trace_events(spans, instants)

    def test_json_roundtrip_and_phases(self):
        events = json.loads(json.dumps(self.make_events()))
        assert isinstance(events, list) and events
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        assert any(e["ph"] == "X" for e in events)

    def test_group_lane_maps_to_pid_tid(self):
        events = self.make_events()
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        # Same group -> same pid, different lane -> different tid.
        assert spans["Input"]["pid"] == spans["N-Input"]["pid"]
        assert spans["Input"]["tid"] != spans["N-Input"]["tid"]
        # Different group -> different pid; bare track gets lane "main".
        assert spans["fig10"]["pid"] != spans["Input"]["pid"]

    def test_metadata_names_processes_and_threads(self):
        events = self.make_events()
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert process_names == {"e0", "bench"}
        assert {"CT", "NT", "main"} <= thread_names

    def test_timestamps_are_microseconds(self):
        events = self.make_events()
        span = next(e for e in events if e["ph"] == "X" and e["name"] == "Input")
        assert span["ts"] == 0.0 and span["dur"] == pytest.approx(1e6)
        inst = next(e for e in events if e["ph"] == "i")
        assert inst["ts"] == pytest.approx(0.25e6) and inst["s"] == "t"

    def test_write_chrome_trace_file_parses(self, tmp_path):
        t = Telemetry()
        t.sink.complete("a/b", "x", 0.0, 1.0)
        path = t.write_chrome_trace(tmp_path / "trace.json")
        events = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in events)


class TestFlameSummary:
    def test_aggregates_by_track_and_name(self):
        spans = [
            SpanRecord("e0/CT", "EO", 0.0, 3.0),
            SpanRecord("e0/CT", "EO", 3.0, 6.0),
            SpanRecord("e0/CT", "Input", 0.0, 1.0),
        ]
        text = flame_summary(spans)
        lines = text.splitlines()
        eo_line = next(line for line in lines if "EO" in line)
        assert "2" in eo_line  # count
        assert "#" in text  # bars present
        # Busiest row first.
        assert lines.index(eo_line) < lines.index(
            next(line for line in lines if "Input" in line)
        )

    def test_empty(self):
        assert flame_summary([]) == "no spans recorded"
