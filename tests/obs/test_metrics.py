"""Unit tests for repro.obs.metrics."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent(self):
        c = Counter("lookups")
        c.inc(result="hit")
        c.inc(result="hit")
        c.inc(result="miss")
        assert c.value(result="hit") == 2.0
        assert c.value(result="miss") == 1.0
        assert c.total() == 3.0

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)

    def test_unseen_labels_read_zero(self):
        assert Counter("x").value(result="hit") == 0.0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(5.0)
        g.add(-2.0)
        assert g.value() == 3.0

    def test_unset_is_none(self):
        assert Gauge("depth").value() is None


class TestSeries:
    def test_append_points_last(self):
        s = Series("gsplit")
        s.append(1, 0.889)
        s.append(2, 0.7)
        assert s.points() == [(1.0, 0.889), (2.0, 0.7)]
        assert s.last() == (2.0, 0.7)

    def test_labeled_series(self):
        s = Series("csplit")
        s.append(1, 0.3, core=0)
        s.append(1, 0.7, core=1)
        assert s.points(core=0) == [(1.0, 0.3)]
        assert s.last() is None  # the unlabeled series is empty


class TestHistogram:
    def test_count_mean_bounds(self):
        h = Histogram("t", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count() == 3
        assert h.mean() == pytest.approx(22.5 / 3)
        state = h.snapshot()["series"][0]["value"]
        assert state["bucket_counts"] == [1, 1, 1]  # <=1, <=10, overflow
        assert state["min"] == 0.5 and state["max"] == 20.0

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("c", "help text").inc(result="hit")
        reg.series("s").append(1, 2.0)
        doc = json.loads(reg.to_json())
        assert doc["c"]["kind"] == "counter"
        assert doc["c"]["series"][0] == {"labels": {"result": "hit"}, "value": 1.0}
        assert doc["s"]["series"][0]["value"] == [[1.0, 2.0]]

    def test_reset_clears_data_keeps_registrations(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(5)
        reg.reset()
        assert reg.counter("c") is counter  # registration survives
        assert counter.value() == 0.0

    def test_csv_has_one_row_per_labeled_series(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(result="hit")
        reg.counter("c").inc(result="miss")
        lines = reg.to_csv().strip().splitlines()
        assert lines[0] == "metric,kind,labels,value"
        assert len(lines) == 3

    def test_scalar_summary_keys(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(result="hit")
        reg.gauge("g").set(2.0)
        reg.series("s").append(1, 9.0)
        summary = reg.scalar_summary()
        assert summary["c{result=hit}"] == 1.0
        assert summary["g"] == 2.0
        assert summary["s"] == 9.0  # last y value

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("alpha").inc()
        reg.gauge("beta").set(1.0)
        text = reg.render()
        assert "alpha" in text and "beta" in text
