"""Unit tests for CpuCore, GPUDevice and PCIeLink."""

import pytest

from repro.machine.cpu import CpuCore
from repro.machine.gpu import GPUDevice, GpuMemoryError
from repro.machine.pcie import PCIeLink
from repro.machine.presets import PCIE_2, RV770, XEON_E5540
from repro.sim import Simulator
from repro.util.units import GB, MB


class TestCpuCore:
    def test_base_rate(self):
        core = CpuCore(Simulator(), XEON_E5540, 0)
        assert core.base_rate() == pytest.approx(10.12e9 * 0.885)

    def test_compute_time_deterministic(self):
        core = CpuCore(Simulator(), XEON_E5540, 0)
        t = core.compute_time(1e9, jitter=False)
        assert t == pytest.approx(1e9 / (10.12e9 * 0.885))

    def test_compute_event_fires(self):
        sim = Simulator()
        core = CpuCore(sim, XEON_E5540, 0)

        def work():
            yield core.compute(2e9, jitter=False)
            return sim.now

        assert sim.run(until=sim.process(work())) == pytest.approx(2e9 / core.base_rate())

    def test_zero_flops_is_instant(self):
        core = CpuCore(Simulator(), XEON_E5540, 0)
        assert core.compute_time(0.0) == 0.0

    def test_static_factor_scales_rate(self):
        fast = CpuCore(Simulator(), XEON_E5540, 0, static_factor=1.1)
        slow = CpuCore(Simulator(), XEON_E5540, 0, static_factor=0.9)
        assert fast.base_rate() / slow.base_rate() == pytest.approx(1.1 / 0.9)

    def test_l2_penalty_applies_only_when_transfer_busy(self):
        busy = [False]
        core = CpuCore(
            Simulator(),
            XEON_E5540,
            1,
            l2_share_penalty=0.12,
            transfer_busy=lambda: busy[0],
        )
        core.l2_shares_with_transfer = True
        quiet_rate = core.current_rate()
        busy[0] = True
        assert core.current_rate() == pytest.approx(quiet_rate * 0.88)

    def test_l2_penalty_ignored_without_flag(self):
        core = CpuCore(Simulator(), XEON_E5540, 2, l2_share_penalty=0.5, transfer_busy=lambda: True)
        assert core.current_rate() == pytest.approx(core.base_rate())

    def test_jitter_changes_durations(self):
        import numpy as np

        core = CpuCore(
            Simulator(), XEON_E5540, 0, jitter_sigma=0.05, rng=np.random.default_rng(1)
        )
        times = {core.compute_time(1e9) for _ in range(5)}
        assert len(times) > 1

    def test_utilization_accounting(self):
        sim = Simulator()
        core = CpuCore(sim, XEON_E5540, 0)

        def work():
            yield core.compute(1e9, jitter=False)
            yield sim.timeout(core.busy_time)  # idle as long as it was busy

        sim.run(until=sim.process(work()))
        assert core.utilization() == pytest.approx(0.5)
        assert core.flops_done == 1e9

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            CpuCore(Simulator(), XEON_E5540, 9)

    def test_negative_flops_rejected(self):
        core = CpuCore(Simulator(), XEON_E5540, 0)
        with pytest.raises(ValueError):
            core.compute_time(-1.0)


class TestGPUDevice:
    def make(self, **kw):
        return GPUDevice(Simulator(), RV770, **kw)

    def test_peak_at_default_clock(self):
        assert self.make().peak_flops == pytest.approx(240e9)

    def test_set_clock_downclock(self):
        gpu = self.make()
        gpu.set_clock(575.0)
        assert gpu.peak_flops == pytest.approx(184e9)

    def test_efficiency_saturates(self):
        gpu = self.make()
        assert gpu.efficiency(0.0) == 0.0
        assert gpu.efficiency(RV770.w_half) == pytest.approx(RV770.eff_max / 2)
        assert gpu.efficiency(1e15) == pytest.approx(RV770.eff_max, rel=1e-3)

    def test_efficiency_monotone(self):
        gpu = self.make()
        workloads = [1e9, 1e10, 1e11, 1e12, 1e13]
        effs = [gpu.efficiency(w) for w in workloads]
        assert effs == sorted(effs)

    def test_kernel_time_includes_overhead(self):
        gpu = self.make()
        assert gpu.kernel_time(0.0) == pytest.approx(RV770.kernel_launch_overhead)

    def test_kernel_rate_with_drift(self):
        sim = Simulator()
        gpu = GPUDevice(sim, RV770, drift=lambda t: 0.9)
        w = 1e12
        assert gpu.kernel_rate(w) == pytest.approx(240e9 * gpu.efficiency(w) * 0.9)

    def test_run_kernel_event(self):
        sim = Simulator()
        gpu = GPUDevice(sim, RV770)

        def work():
            yield gpu.run_kernel(1e12, jitter=False)
            return sim.now

        elapsed = sim.run(until=sim.process(work()))
        assert elapsed == pytest.approx(gpu.kernel_time(1e12, jitter=False))
        assert gpu.kernel_count == 1
        assert gpu.flops_done == 1e12

    def test_texture_limit(self):
        gpu = self.make()
        gpu.check_texture(8192, 8192)  # ok
        with pytest.raises(GpuMemoryError, match="texture limit"):
            gpu.check_texture(8193, 100)

    def test_memory_accounting(self):
        gpu = self.make()
        gpu.alloc(400 * MB)
        assert gpu.memory_allocated == 400 * MB
        assert gpu.memory_free == pytest.approx(1 * GB - 400 * MB)
        gpu.free(400 * MB)
        assert gpu.memory_allocated == 0.0

    def test_memory_overflow_raises(self):
        gpu = self.make()
        with pytest.raises(GpuMemoryError, match="local memory"):
            gpu.alloc(1.5 * GB)

    def test_over_free_raises(self):
        gpu = self.make()
        with pytest.raises(GpuMemoryError):
            gpu.free(1.0)

    def test_alloc_validates_texture_extent(self):
        gpu = self.make()
        with pytest.raises(GpuMemoryError):
            gpu.alloc(1 * MB, rows=10000, cols=10)


class TestPCIeLink:
    def test_paper_worked_example_pageable(self):
        # Section V.A: 3 matrices of 800 MB: 2400/500 + 2400/5000 = 5.28 s.
        link = PCIeLink(Simulator(), PCIE_2)
        assert link.duration(2400 * MB, pinned=False) == pytest.approx(5.28, rel=1e-3)

    def test_pinned_faster(self):
        link = PCIeLink(Simulator(), PCIE_2)
        assert link.duration(1 * GB, pinned=True) < link.duration(1 * GB, pinned=False)

    def test_effective_bandwidth(self):
        link = PCIeLink(Simulator(), PCIE_2)
        bw = link.bandwidth(pinned=False)
        assert bw == pytest.approx(1.0 / (1 / 500e6 + 1 / 5e9))

    def test_to_gpu_completes_at_duration(self):
        sim = Simulator()
        link = PCIeLink(sim, PCIE_2)

        def mover():
            yield link.to_gpu(100 * MB, pinned=True)
            return sim.now

        elapsed = sim.run(until=sim.process(mover()))
        assert elapsed == pytest.approx(link.duration(100 * MB, pinned=True), rel=1e-6)
        assert link.bytes_to_gpu == 100 * MB

    def test_busy_flag_during_transfer(self):
        sim = Simulator()
        link = PCIeLink(sim, PCIE_2)
        observed = []

        def mover():
            yield link.to_gpu(100 * MB)

        def watcher():
            yield sim.timeout(0.01)
            observed.append(link.busy)
            yield sim.timeout(10.0)
            observed.append(link.busy)

        sim.process(mover())
        sim.process(watcher())
        sim.run()
        assert observed == [True, False]

    def test_transfers_serialise_on_host_hop(self):
        sim = Simulator()
        link = PCIeLink(sim, PCIE_2)
        done = []

        def mover(tag):
            yield link.to_gpu(250 * MB, pinned=True)
            done.append((tag, sim.now))

        sim.process(mover("a"))
        sim.process(mover("b"))
        sim.run()
        # Second transfer's host hop waits for the first's host hop.
        single_host = 250 * MB / PCIE_2.pinned_bw
        assert done[1][1] >= done[0][1] + single_host * 0.99

    def test_pageable_occupies_host_hop_longer(self):
        sim = Simulator()
        link = PCIeLink(sim, PCIE_2)

        def mover():
            yield link.to_gpu(50 * MB, pinned=False)
            return sim.now

        elapsed = sim.run(until=sim.process(mover()))
        assert elapsed == pytest.approx(link.duration(50 * MB, pinned=False), rel=1e-6)

    def test_to_host_direction_counter(self):
        sim = Simulator()
        link = PCIeLink(sim, PCIE_2)

        def mover():
            yield link.to_host(10 * MB)

        sim.run(until=sim.process(mover()))
        assert link.bytes_to_host == 10 * MB
        assert link.bytes_to_gpu == 0.0
