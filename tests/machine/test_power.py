"""Unit tests for the power model against the paper's two anchors."""

import pytest

from repro.machine.power import TIANHE1_POWER, PowerModel
from repro.model import calibration as cal
from repro.util.units import TFLOPS


class TestPowerAnchors:
    def test_cabinet_draw_matches_paper(self):
        # Section VI.C: "The power consumption of one cabinet ... about 18.5 kw".
        assert TIANHE1_POWER.cabinet_kw(clock_mhz=575.0) == pytest.approx(18.5)

    def test_green500_figure(self):
        # Section III: 379.24 MFLOPS/W on the Linpack run.
        got = TIANHE1_POWER.mflops_per_watt(cal.LINPACK_FULL_SYSTEM, cabinets=80)
        assert got == pytest.approx(cal.MFLOPS_PER_WATT, rel=0.01)

    def test_training_energy_reproduction(self):
        # 2 hours at one cabinet's 18.5 kW = 37 kWh; 80 cabinets = 2960 kWh.
        one = TIANHE1_POWER.energy_kwh(cabinets=1, seconds=2 * 3600)
        assert one == pytest.approx(cal.QILIN_TRAINING_KWH_PER_CABINET, rel=1e-3)
        assert 80 * one == pytest.approx(cal.QILIN_TRAINING_KWH_FULL_SYSTEM, rel=1e-3)


class TestPowerModelBehaviour:
    def test_higher_clock_draws_more(self):
        assert TIANHE1_POWER.cabinet_kw(750.0) > TIANHE1_POWER.cabinet_kw(575.0)

    def test_idle_floor(self):
        model = PowerModel()
        assert model.cabinet_kw(575.0, load=0.0) == pytest.approx(model.idle_kw_per_cabinet)

    def test_system_scales_linearly(self):
        assert TIANHE1_POWER.system_kw(80) == pytest.approx(80 * 18.5)

    def test_energy(self):
        assert TIANHE1_POWER.energy_kwh(1, 3600.0) == pytest.approx(18.5)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            TIANHE1_POWER.cabinet_kw(575.0, load=-0.1)
