"""Unit tests for ComputeElement, Node, Interconnect and Cluster."""

import numpy as np
import pytest

from repro.machine.cluster import Cluster
from repro.machine.interconnect import Interconnect
from repro.machine.node import ComputeElement, Node
from repro.machine.presets import (
    QDR_INFINIBAND,
    tianhe1_cluster,
    tianhe1_element,
    tianhe1_node,
)
from repro.machine.variability import NO_VARIABILITY, VariabilitySpec
from repro.sim import Simulator
from repro.util.units import MB


class TestComputeElement:
    def make(self, variability=NO_VARIABILITY):
        return ComputeElement(Simulator(), tianhe1_element(), variability=variability)

    def test_core_roles(self):
        element = self.make()
        assert len(element.cores) == 4
        assert len(element.compute_cores) == 3
        assert element.transfer_core is element.cores[0]
        assert element.transfer_core not in element.compute_cores

    def test_l2_sibling_flagged(self):
        element = self.make()
        # Transfer core 0 pairs with core 1.
        assert element.cores[1].l2_shares_with_transfer
        assert not element.cores[2].l2_shares_with_transfer

    def test_peak_and_gsplit(self):
        element = self.make()
        assert element.peak_flops == pytest.approx(280.48e9, rel=1e-3)
        assert element.initial_gsplit == pytest.approx(0.889, abs=0.002)

    def test_cpu_compute_rate_deterministic(self):
        element = self.make()
        assert element.cpu_compute_rate() == pytest.approx(3 * 10.12e9 * 0.885)

    def test_l2_penalty_active_during_transfer(self):
        sim = Simulator()
        element = ComputeElement(
            sim, tianhe1_element(), variability=VariabilitySpec(
                core_jitter_sigma=0.0, gpu_jitter_sigma=0.0, element_spread_sigma=0.0,
                l2_share_penalty=0.2, thermal_drift_depth=0.0,
            ),
        )
        rates = []

        def transfer():
            yield element.pcie.to_gpu(100 * MB)

        def probe():
            yield sim.timeout(0.001)
            rates.append(element.cpu_compute_rate())

        sim.process(transfer())
        sim.process(probe())
        sim.run()
        quiet = 3 * 10.12e9 * 0.885
        assert rates[0] == pytest.approx(quiet - 0.2 * 10.12e9 * 0.885)

    def test_gpu_cold_rate_unaffected_by_drift_depth(self):
        element = ComputeElement(
            Simulator(), tianhe1_element(), variability=NO_VARIABILITY, drift_depth=0.5
        )
        assert element.gpu.kernel_rate(1e12, at_time=0.0) == pytest.approx(
            240e9 * element.gpu.efficiency(1e12)
        )


class TestNode:
    def test_two_elements(self):
        node = Node(Simulator(), tianhe1_node(), variability=NO_VARIABILITY)
        assert len(node.elements) == 2
        assert node.peak_flops == pytest.approx(2 * 280.48e9, rel=1e-3)


class TestInterconnect:
    def test_message_time(self):
        net = Interconnect(Simulator(), QDR_INFINIBAND, n_ranks=4)
        assert net.message_time(5e9) == pytest.approx(1.0 + 1.2e-6)

    def test_send_delivers(self):
        sim = Simulator()
        net = Interconnect(sim, QDR_INFINIBAND, n_ranks=2)

        def sender():
            yield net.send(0, 1, 5e9)
            return sim.now

        assert sim.run(until=sim.process(sender())) == pytest.approx(1.0, rel=1e-3)

    def test_self_send_latency_only(self):
        sim = Simulator()
        net = Interconnect(sim, QDR_INFINIBAND, n_ranks=2)

        def sender():
            yield net.send(1, 1, 5e9)
            return sim.now

        assert sim.run(until=sim.process(sender())) == pytest.approx(1.2e-6)

    def test_port_serialisation(self):
        sim = Simulator()
        net = Interconnect(sim, QDR_INFINIBAND, n_ranks=3)
        done = []

        def sender():
            a = net.send(0, 1, 5e9)
            b = net.send(0, 2, 5e9)
            yield a
            done.append(sim.now)
            yield b
            done.append(sim.now)

        sim.run(until=sim.process(sender()))
        assert done[0] == pytest.approx(1.0, rel=1e-3)
        assert done[1] == pytest.approx(2.0, rel=1e-3)

    def test_rank_range_checked(self):
        net = Interconnect(Simulator(), QDR_INFINIBAND, n_ranks=2)
        with pytest.raises(ValueError):
            net.send(0, 5, 10)

    def test_total_bytes(self):
        sim = Simulator()
        net = Interconnect(sim, QDR_INFINIBAND, n_ranks=2)
        net.send(0, 1, 100.0)
        sim.run()
        assert net.total_bytes() == 100.0


class TestCluster:
    def test_rate_table_shapes(self):
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=1)
        table = cluster.rate_table()
        assert table.n_elements == 64
        assert table.gpu_peak.shape == (64,)
        assert np.all(table.cpu_hybrid_rate < table.cpu_full_rate)

    def test_rate_table_matches_des_element(self):
        """The vectorized table and the DES device must agree per element."""
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=7)
        table = cluster.rate_table()
        sim = Simulator()
        for idx in (0, 13, 63):
            element = cluster.build_element(sim, idx)
            w = 5e11
            des_rate = element.gpu.kernel_rate(w, at_time=0.0)
            assert table.gpu_rate(w, t=0.0)[idx] == pytest.approx(des_rate, rel=1e-9)
            # CPU full rate (all four cores, no penalty).
            des_cpu = sum(c.base_rate() for c in element.all_cores)
            assert table.cpu_full_rate[idx] == pytest.approx(des_cpu, rel=1e-9)

    def test_drift_applied_in_table(self):
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=7)
        table = cluster.rate_table()
        cold = table.gpu_rate(1e12, t=0.0)
        hot = table.gpu_rate(1e12, t=1e9)
        assert np.all(hot < cold)
        assert np.allclose(hot, cold * (1 - table.drift_depth))

    def test_static_factors_reproducible(self):
        a = Cluster(tianhe1_cluster(cabinets=1), seed=5)
        b = Cluster(tianhe1_cluster(cabinets=1), seed=5)
        assert a.static_factor(10) == b.static_factor(10)
        assert a.drift_depth(10) == b.drift_depth(10)

    def test_different_seeds_differ(self):
        a = Cluster(tianhe1_cluster(cabinets=1), seed=5)
        b = Cluster(tianhe1_cluster(cabinets=1), seed=6)
        assert a.static_factor(10) != b.static_factor(10)

    def test_subset(self):
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=1)
        table = cluster.rate_table()
        sub = table.subset(np.arange(8))
        assert sub.n_elements == 8
        assert np.array_equal(sub.gpu_peak, table.gpu_peak[:8])

    def test_gpu_kernel_time_vectorized(self):
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=1)
        table = cluster.rate_table()
        times = table.gpu_kernel_time(1e12)
        assert times.shape == (64,)
        assert np.all(times > 0)

    def test_build_element_out_of_range(self):
        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=1)
        with pytest.raises(ValueError):
            cluster.build_element(Simulator(), 64)

    def test_mixed_population_rates(self):
        cluster = Cluster(tianhe1_cluster(cabinets=80, variability=NO_VARIABILITY), seed=1)
        table = cluster.rate_table()
        # E5450 elements (tail) have faster CPUs.
        assert table.cpu_full_rate[-1] > table.cpu_full_rate[0]
        assert table.cpu_full_rate[-1] == pytest.approx(48e9 * 0.885)
