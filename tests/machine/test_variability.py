"""Unit tests for repro.machine.variability."""

import numpy as np
import pytest

from repro.machine.variability import (
    NO_VARIABILITY,
    ThermalModel,
    VariabilitySpec,
    draw_static_factors,
    jitter_factor,
    thermal_drift,
)


class TestVariabilitySpec:
    def test_defaults_valid(self):
        spec = VariabilitySpec()
        assert not spec.deterministic

    def test_no_variability_is_deterministic(self):
        assert NO_VARIABILITY.deterministic

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            VariabilitySpec(core_jitter_sigma=-0.1)

    def test_rejects_penalty_above_one(self):
        with pytest.raises(ValueError):
            VariabilitySpec(l2_share_penalty=1.5)


class TestStaticFactors:
    def test_zero_sigma_gives_ones(self):
        factors = draw_static_factors(10, 0.0, np.random.default_rng(0))
        assert np.all(factors == 1.0)

    def test_positive_and_spread(self):
        factors = draw_static_factors(5000, 0.05, np.random.default_rng(0))
        assert np.all(factors > 0)
        assert 0.04 < np.std(np.log(factors)) < 0.06

    def test_reproducible(self):
        a = draw_static_factors(10, 0.1, np.random.default_rng(3))
        b = draw_static_factors(10, 0.1, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_empty(self):
        assert len(draw_static_factors(0, 0.1, np.random.default_rng(0))) == 0


class TestJitter:
    def test_zero_sigma_is_one(self):
        assert jitter_factor(0.0, np.random.default_rng(0)) == 1.0

    def test_mean_approximately_one(self):
        rng = np.random.default_rng(7)
        draws = [jitter_factor(0.05, rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(1.0, abs=0.01)


class TestThermalDrift:
    def test_cold_start_is_one(self):
        assert thermal_drift(0.06, 600.0)(0.0) == 1.0

    def test_settles_at_depth(self):
        factor = thermal_drift(0.06, 600.0)
        assert factor(1e9) == pytest.approx(0.94)

    def test_monotone_decreasing(self):
        factor = thermal_drift(0.1, 100.0)
        times = [0, 10, 100, 1000, 10000]
        values = [factor(t) for t in times]
        assert values == sorted(values, reverse=True)

    def test_zero_depth_constant(self):
        factor = thermal_drift(0.0, 100.0)
        assert factor(1e6) == 1.0

    def test_zero_tau_is_step(self):
        factor = thermal_drift(0.05, 0.0)
        assert factor(1e-9) == pytest.approx(0.95)


class TestThermalModel:
    def test_paper_anchor_points(self):
        # Section VI.A: 750 MHz -> 110 C; 575 MHz -> 92 C.
        model = ThermalModel()
        assert model.temperature(750.0) == pytest.approx(110.0)
        assert model.temperature(575.0) == pytest.approx(92.0)

    def test_standard_clock_unstable_downclock_stable(self):
        # The paper downclocked precisely because 750 MHz was "unstable".
        model = ThermalModel()
        assert not model.is_stable(750.0)
        assert model.is_stable(575.0)

    def test_max_stable_clock_between_anchors(self):
        model = ThermalModel()
        clock = model.max_stable_clock()
        assert 575.0 < clock < 750.0
        assert model.temperature(clock) == pytest.approx(ThermalModel.STABILITY_LIMIT_C)

    def test_rejects_wrong_anchor_count(self):
        with pytest.raises(ValueError):
            ThermalModel(anchors=((1.0, 2.0),))
