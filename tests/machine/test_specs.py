"""Unit tests for repro.machine.specs."""

import pytest

from repro.machine.specs import (
    CPUSpec,
    ClusterSpec,
    ElementSpec,
    GPUSpec,
    InterconnectSpec,
    NodeSpec,
    PCIeSpec,
)
from repro.machine.presets import PCIE_2, QDR_INFINIBAND, RV770, XEON_E5450, XEON_E5540, tianhe1_node


class TestCPUSpec:
    def test_peak_is_cores_times_core_peak(self):
        assert XEON_E5540.peak_flops == pytest.approx(40.48e9)
        assert XEON_E5450.peak_flops == pytest.approx(48e9)

    def test_l2_sibling_lookup(self):
        assert XEON_E5450.l2_sibling(0) == 1
        assert XEON_E5450.l2_sibling(1) == 0
        assert XEON_E5450.l2_sibling(3) == 2

    def test_l2_sibling_none_when_unpaired(self):
        spec = CPUSpec("plain", 4, 10e9, 0.9, l2_pairs=())
        assert spec.l2_sibling(0) is None

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            CPUSpec("bad", 4, 10e9, 1.5)

    def test_rejects_out_of_range_pair(self):
        with pytest.raises(ValueError):
            CPUSpec("bad", 2, 10e9, 0.9, l2_pairs=((0, 5),))


class TestGPUSpec:
    def test_peak_scales_with_clock(self):
        assert RV770.peak_flops() == pytest.approx(240e9)
        assert RV770.peak_flops(575.0) == pytest.approx(184e9)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            RV770.peak_flops(0.0)

    def test_rejects_bad_eff_max(self):
        with pytest.raises(ValueError):
            GPUSpec("g", 750, 240e9, 900, 1e9, 8192, eff_max=2.0, w_half=1e9, kernel_launch_overhead=0)


class TestPCIeSpec:
    def test_host_bw_selects_path(self):
        assert PCIE_2.host_bw(pinned=False) == pytest.approx(500e6)
        assert PCIE_2.host_bw(pinned=True) > PCIE_2.host_bw(pinned=False)

    def test_pinned_slower_than_pageable_rejected(self):
        with pytest.raises(ValueError):
            PCIeSpec(pageable_bw=1e9, pinned_bw=5e8, gpu_bw=5e9, latency=0, pinned_chunk_bytes=4e6)


class TestElementSpec:
    def test_paper_element_peak(self):
        # Section IV.A: "the peak performance of one compute element is 280.5 GFLOPS".
        element = ElementSpec(XEON_E5540, RV770, PCIE_2, gpu_clock_mhz=750.0)
        assert element.peak_flops == pytest.approx(280.48e9, rel=1e-3)

    def test_initial_gsplit_matches_paper(self):
        # Section VI.B / Fig 10: initial value 0.889 from the peak ratio.
        element = ElementSpec(XEON_E5540, RV770, PCIE_2, gpu_clock_mhz=750.0)
        assert element.initial_gsplit == pytest.approx(0.889, abs=0.002)

    def test_compute_cores_excludes_transfer_core(self):
        element = ElementSpec(XEON_E5540, RV770, PCIE_2, gpu_clock_mhz=750.0, transfer_core=2)
        assert element.compute_core_indices == (0, 1, 3)

    def test_cpu_compute_peak_three_cores(self):
        element = ElementSpec(XEON_E5540, RV770, PCIE_2, gpu_clock_mhz=750.0)
        assert element.cpu_compute_peak == pytest.approx(3 * 10.12e9)

    def test_transfer_core_out_of_range(self):
        with pytest.raises(ValueError):
            ElementSpec(XEON_E5540, RV770, PCIE_2, gpu_clock_mhz=750.0, transfer_core=4)


class TestNodeAndClusterSpec:
    def test_node_peak(self):
        node = tianhe1_node()
        assert node.peak_flops == pytest.approx(2 * 280.48e9, rel=1e-3)

    def test_node_requires_elements(self):
        with pytest.raises(ValueError):
            NodeSpec(elements=(), shared_memory_bytes=1e9)

    def test_cluster_indexing(self):
        node_a = tianhe1_node(XEON_E5540)
        node_b = tianhe1_node(XEON_E5450)
        spec = ClusterSpec(
            name="mini",
            cabinets=2,
            nodes_per_cabinet=2,
            node_specs=((0, node_a), (3, node_b)),
            interconnect=InterconnectSpec(5e9, 1.2e-6),
        )
        assert spec.total_nodes == 4
        assert spec.total_elements == 8
        assert spec.node_spec(0) is node_a
        assert spec.node_spec(2) is node_a
        assert spec.node_spec(3) is node_b
        # element 6 and 7 live on node 3
        assert spec.element_spec(6).cpu.name == "Xeon E5450"
        assert spec.element_spec(5).cpu.name == "Xeon E5540"

    def test_cluster_peak_sums_ranges(self):
        node_a = tianhe1_node(XEON_E5540)
        spec = ClusterSpec(
            name="tiny",
            cabinets=1,
            nodes_per_cabinet=2,
            node_specs=((0, node_a),),
            interconnect=InterconnectSpec(5e9, 1.2e-6),
        )
        assert spec.peak_flops == pytest.approx(2 * node_a.peak_flops)

    def test_cluster_rejects_unsorted_ranges(self):
        node = tianhe1_node()
        with pytest.raises(ValueError):
            ClusterSpec(
                name="bad",
                cabinets=1,
                nodes_per_cabinet=4,
                node_specs=((2, node), (0, node)),
                interconnect=InterconnectSpec(5e9, 1.2e-6),
            )

    def test_node_index_out_of_range(self):
        node = tianhe1_node()
        spec = ClusterSpec(
            name="t",
            cabinets=1,
            nodes_per_cabinet=1,
            node_specs=((0, node),),
            interconnect=InterconnectSpec(5e9, 1.2e-6),
        )
        with pytest.raises(ValueError):
            spec.node_spec(1)
