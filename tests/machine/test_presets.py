"""Calibration checks: presets must reproduce the paper's stated totals."""

import pytest

from repro.machine import presets
from repro.util.units import TFLOPS


class TestPaperDerivedTotals:
    def test_cpu_aggregate_peak(self):
        # Section III: "The peak performance contributed by the CPUs is 214.96 TFLOPS"
        total = 4096 * presets.XEON_E5540.peak_flops + 1024 * presets.XEON_E5450.peak_flops
        assert total == pytest.approx(214.96 * TFLOPS, rel=1e-3)

    def test_gpu_aggregate_peak_at_575(self):
        # Section III: "The 5120 RV770 GPU chips contribute 942.08 TFLOPS".
        total = 5120 * presets.RV770.peak_flops(presets.DOWNCLOCKED_MHZ)
        assert total == pytest.approx(942.08 * TFLOPS, rel=1e-3)

    def test_gpu_fraction_of_peak(self):
        # Section III: GPUs occupy 81.42% of the node peak.
        cpu = 4096 * presets.XEON_E5540.peak_flops + 1024 * presets.XEON_E5450.peak_flops
        gpu = 5120 * presets.RV770.peak_flops(presets.DOWNCLOCKED_MHZ)
        assert gpu / (gpu + cpu) == pytest.approx(0.8142, abs=0.001)

    def test_rv770_dp_peak(self):
        # Section V.A: "peak performance of an AMD RV770 GPU chip capable of 240 GFLOPS".
        assert presets.RV770.peak_flops() == pytest.approx(240e9)


class TestElementPreset:
    def test_default_element_is_e5540_at_750(self):
        element = presets.tianhe1_element()
        assert element.cpu.name == "Xeon E5540"
        assert element.gpu_clock_mhz == 750.0
        assert element.peak_flops == pytest.approx(280.48e9, rel=1e-3)

    def test_initial_gsplit(self):
        assert presets.tianhe1_element().initial_gsplit == pytest.approx(0.889, abs=0.002)


class TestClusterPreset:
    def test_full_system_shape(self):
        spec = presets.tianhe1_cluster()
        assert spec.cabinets == 80
        assert spec.total_nodes == 2560
        assert spec.total_elements == 5120

    def test_full_system_peak_near_1_206_pflops(self):
        # Section III: peak performance 1.206 PFLOPS (GPUs counted at 575 MHz).
        spec = presets.tianhe1_cluster()
        assert spec.peak_flops == pytest.approx(1157 * TFLOPS, rel=0.01)
        # The headline 1.206 PFLOPS also counts front-end nodes the paper
        # excludes from the Linpack run ("A total of 2560 compute nodes were
        # used"); compute-node peak is 214.96 + 942.08 = 1157 TFLOPS.

    def test_mixed_population(self):
        spec = presets.tianhe1_cluster()
        assert spec.node_spec(0).elements[0].cpu.name == "Xeon E5540"
        assert spec.node_spec(2559).elements[0].cpu.name == "Xeon E5450"
        # 2048 E5540 nodes = 4096 CPUs; 512 E5450 nodes = 1024 CPUs.
        assert spec.node_spec(2047).elements[0].cpu.name == "Xeon E5540"
        assert spec.node_spec(2048).elements[0].cpu.name == "Xeon E5450"

    def test_single_cabinet_is_homogeneous_e5540(self):
        spec = presets.tianhe1_cluster(cabinets=1)
        assert spec.total_elements == 64
        assert all(
            spec.element_spec(i).cpu.name == "Xeon E5540" for i in range(spec.total_elements)
        )

    def test_downclock_default_for_full_system(self):
        spec = presets.tianhe1_cluster()
        assert spec.element_spec(0).gpu_clock_mhz == presets.DOWNCLOCKED_MHZ
