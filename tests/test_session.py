"""The Scenario/Session front door: validation, normalization, shim parity."""

import pytest

from repro.hpl.driver import (
    Configuration,
    run_linpack,
    run_linpack_element,
    single_element_cluster,
    validate_overrides,
)
from repro.hpl.grid import ProcessGrid
from repro.machine.variability import VariabilitySpec
from repro.session import Scenario, Session, run

N = 8000


class TestConfigurationEnum:
    def test_parse_accepts_strings_and_members(self):
        assert Configuration.parse("acmlg_both") is Configuration.ACMLG_BOTH
        assert Configuration.parse(Configuration.QILIN) is Configuration.QILIN

    def test_parse_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="valid configurations"):
            Configuration.parse("acmlg_boht")

    def test_members_are_string_interchangeable(self):
        member = Configuration.ACMLG_BOTH
        assert member == "acmlg_both"
        assert str(member) == "acmlg_both"
        # Hashing matches equality in both directions, so dicts keyed either
        # way stay reachable.
        assert {member: 1}["acmlg_both"] == 1
        assert {"acmlg_both": 2}[member] == 2

    def test_labels_match_the_paper(self):
        assert Configuration.ACMLG_BOTH.label == "ACMLG+both"
        assert Configuration.STATIC_PEAK.label == "Static"
        assert Configuration.QILIN.label == "Qilin"

    def test_every_member_has_an_analytic_config(self):
        for member in Configuration:
            assert member.analytic.nb > 0


class TestScenarioValidation:
    def test_unknown_configuration_raises_at_construction(self):
        with pytest.raises(ValueError, match="valid configurations"):
            Scenario(scheduler="nope", n=N)

    def test_unknown_override_key_raises_at_construction(self):
        with pytest.raises(ValueError, match="valid fields"):
            Scenario(scheduler="cpu", n=N, overrides={"mappingg": "cpu_only"})

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            Scenario(scheduler="cpu", n=0)

    def test_cluster_conflicts_with_machine_knobs(self):
        cluster = single_element_cluster()
        with pytest.raises(ValueError, match="explicit cluster"):
            Scenario(
                scheduler="cpu", n=N, cluster=cluster, variability=VariabilitySpec()
            )
        with pytest.raises(ValueError, match="explicit cluster"):
            Scenario(scheduler="cpu", n=N, cluster=cluster, gpu_clock_mhz=575.0)

    def test_grid_tuple_is_normalized(self):
        scenario = Scenario(scheduler="cpu", n=N, grid=(2, 3))
        assert isinstance(scenario.grid, ProcessGrid)
        assert (scenario.grid.nprow, scenario.grid.npcol) == (2, 3)

    def test_scheduler_spelling_is_preserved(self):
        scenario = Scenario(scheduler="acmlg_both", n=N)
        assert scenario.scheduler == "acmlg_both"
        assert scenario.scheduler_name == "acmlg_both"
        assert Scenario(scheduler="adaptive", n=N).scheduler_name == "adaptive"

    def test_dag_only_scheduler_rejected_at_construction(self):
        with pytest.raises(ValueError, match="task-DAG only"):
            Scenario(scheduler="heft", n=N)

    def test_ambient_scheduler_is_the_default(self):
        from repro import sched

        assert Scenario(n=N).scheduler_name == "adaptive"
        with sched.use("static"):
            assert Scenario(n=N).scheduler_name == "static"

    def test_validate_overrides_lists_valid_fields(self):
        with pytest.raises(ValueError, match="nb"):
            validate_overrides({"block_size": 1216})
        assert validate_overrides(None) == {}
        assert validate_overrides({"nb": 196}) == {"nb": 196}


class TestSessionRuns:
    def test_run_returns_a_result(self):
        result = Session(Scenario(scheduler="cpu", n=N)).run()
        assert result.gflops > 0
        assert result.configuration == "cpu"
        assert result.degraded is None

    def test_module_level_run_matches_session(self):
        scenario = Scenario(scheduler="acmlg_both", n=N)
        assert run(scenario).gflops == Session(scenario).run().gflops

    def test_static_peak_configuration_runs(self):
        result = run(Scenario(scheduler=Configuration.STATIC_PEAK, n=N))
        assert result.gflops > 0

    def test_explicit_cluster_and_grid(self):
        from repro.machine.cluster import Cluster
        from repro.machine.presets import tianhe1_cluster

        cluster = Cluster(tianhe1_cluster(cabinets=1), seed=2009)
        result = run(
            Scenario(scheduler="acmlg_both", n=2 * N, cluster=cluster, grid=(2, 2))
        )
        assert result.grid == (2, 2)
        assert result.gflops > 0


class TestDeprecatedShims:
    def test_configuration_kwarg_warns_and_folds_into_scheduler(self):
        with pytest.warns(DeprecationWarning, match="scheduler="):
            scenario = Scenario(configuration="acmlg_both", n=N)
        assert scenario.configuration is None  # folded away after parsing
        assert scenario.scheduler_name == "acmlg_both"

    def test_configuration_kwarg_matches_scheduler_kwarg_exactly(self):
        with pytest.warns(DeprecationWarning):
            old = run(Scenario(configuration="acmlg_both", n=N))
        new = run(Scenario(scheduler="acmlg_both", n=N))
        assert old.gflops == new.gflops
        assert run(Scenario(scheduler="adaptive", n=N)).gflops == new.gflops

    def test_replace_on_parsed_scenario_does_not_rewarn(self):
        import dataclasses
        import warnings

        with pytest.warns(DeprecationWarning):
            scenario = Scenario(configuration="cpu", n=N)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clone = dataclasses.replace(scenario, n=2 * N)
        assert clone.scheduler_name == "cpu"

    def test_both_kwargs_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                Scenario(configuration="cpu", scheduler="adaptive", n=N)

    def test_run_linpack_element_warns_and_matches_session(self):
        with pytest.warns(DeprecationWarning, match="run_linpack_element"):
            old = run_linpack_element("acmlg_both", N, seed=7)
        new = Session(Scenario(scheduler="acmlg_both", n=N, seed=7)).run()
        assert old.gflops == new.gflops
        assert old.elapsed == new.elapsed

    def test_run_linpack_warns_and_matches_session(self):
        cluster = single_element_cluster()
        with pytest.warns(DeprecationWarning, match="run_linpack"):
            old = run_linpack("cpu", N, cluster, ProcessGrid(1, 1), seed=7)
        new = run(
            Scenario(scheduler="cpu", n=N, cluster=cluster, seed=7)
        )
        assert old.gflops == new.gflops
