"""Property-based tests for the software pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import NumericContext, SoftwarePipeline, SyncExecutor
from repro.core.taskqueue import build_task_queue
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator

shapes = st.tuples(
    st.integers(1000, 24000),  # m1
    st.integers(1000, 24000),  # n
    st.integers(100, 10000),  # k
)
rates = st.floats(20e9, 250e9)


def run(executor_cls, queue, rate):
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
    executor = executor_cls(element, jitter=False)
    result = sim.run(until=sim.process(executor.execute(queue, rate)))
    return result, element


class TestPipelineProperties:
    @given(shapes, rates)
    @settings(max_examples=25, deadline=None)
    def test_pipeline_never_slower_than_sync(self, shape, rate):
        m1, n, k = shape
        queue = build_task_queue(m1, n, k, gpu_memory_bytes=1e9)
        sync, _ = run(SyncExecutor, queue, rate)
        pipe, _ = run(SoftwarePipeline, queue, rate)
        assert pipe.duration <= sync.duration * (1 + 1e-9)

    @given(shapes, rates)
    @settings(max_examples=25, deadline=None)
    def test_kernel_time_lower_bound(self, shape, rate):
        """No scheduling trick can beat total kernel time."""
        m1, n, k = shape
        queue = build_task_queue(m1, n, k, gpu_memory_bytes=1e9)
        pipe, element = run(SoftwarePipeline, queue, rate)
        overhead = element.spec.gpu.kernel_launch_overhead
        min_kernels = sum(t.flops for t in queue.tasks) / rate
        assert pipe.duration >= min_kernels * 0.999

    @given(shapes, rates)
    @settings(max_examples=25, deadline=None)
    def test_link_time_lower_bound(self, shape, rate):
        """Nor can it beat the host-hop time of the total traffic."""
        m1, n, k = shape
        queue = build_task_queue(m1, n, k, gpu_memory_bytes=1e9)
        pipe, element = run(SoftwarePipeline, queue, rate)
        host_bw = element.spec.pcie.pinned_bw
        link_floor = (queue.input_bytes + queue.output_bytes) / host_bw
        assert pipe.duration >= link_floor * 0.999

    @given(shapes)
    @settings(max_examples=20, deadline=None)
    def test_traffic_identical_between_executors(self, shape):
        """Pipelining reorders transfers; it must not change their volume."""
        m1, n, k = shape
        queue = build_task_queue(m1, n, k, gpu_memory_bytes=1e9)
        _, sync_el = run(SyncExecutor, queue, 100e9)
        _, pipe_el = run(SoftwarePipeline, queue, 100e9)
        assert sync_el.pcie.bytes_to_gpu == pytest.approx(pipe_el.pcie.bytes_to_gpu)
        assert sync_el.pcie.bytes_to_host == pytest.approx(pipe_el.pcie.bytes_to_host)
        assert sync_el.pcie.bytes_to_gpu == queue.input_bytes
        assert sync_el.pcie.bytes_to_host == queue.output_bytes

    @given(st.integers(50, 400), st.integers(50, 400), st.integers(50, 400),
           st.integers(32, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_numeric_correct_for_any_tiling(self, m1, n, k, limit, seed):
        """Whatever the task/tile structure, the math must be exact."""
        rng = np.random.default_rng(seed)
        a1 = rng.standard_normal((m1, k))
        b = rng.standard_normal((k, n))
        c1 = rng.standard_normal((m1, n))
        expected = a1 @ b + c1
        queue = build_task_queue(m1, n, k, texture_limit=limit, beta_nonzero=True)
        sim = Simulator()
        element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
        pipe = SoftwarePipeline(element, jitter=False)
        ctx = NumericContext(a1=a1, b=b, c1=c1, alpha=1.0, beta=1.0)
        sim.run(until=sim.process(pipe.execute(queue, 100e9, ctx)))
        assert np.allclose(c1, expected, atol=1e-9)
