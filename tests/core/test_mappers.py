"""Unit and property tests for the three mappers (adaptive / static / Qilin)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveMapper, Observation, update_overhead_seconds
from repro.core.qilin import QilinMapper
from repro.core.static_map import StaticMapper


def make_obs(workload, gsplit, gpu_rate, core_rates, csplits=None):
    """Synthesise the observation a run at the given true rates would produce."""
    w_g = workload * gsplit
    w_c = workload - w_g
    n = len(core_rates)
    csplits = csplits if csplits is not None else [1.0 / n] * n
    core_w = tuple(w_c * s for s in csplits)
    return Observation(
        workload=workload,
        gpu_workload=w_g,
        gpu_time=w_g / gpu_rate if gpu_rate > 0 else 0.0,
        core_workloads=core_w,
        core_times=tuple(w / r for w, r in zip(core_w, core_rates)),
    )


class TestObservation:
    def test_cpu_aggregates(self):
        obs = make_obs(100.0, 0.8, 10.0, [1.0, 2.0])
        assert obs.cpu_workload == pytest.approx(20.0)
        assert obs.cpu_time == pytest.approx(10.0)  # slowest core: 10/1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Observation(-1.0, 0.0, 0.0, (), ())
        with pytest.raises(ValueError):
            Observation(1.0, 0.0, 0.0, (1.0,), ())


class TestAdaptiveMapper:
    def make(self, initial=0.889, n_cores=3):
        return AdaptiveMapper(initial, n_cores, max_workload=1e12, n_bins=8)

    def test_initial_lookups(self):
        mapper = self.make()
        assert mapper.gsplit(1e9) == 0.889
        assert np.allclose(mapper.csplits(), [1 / 3] * 3)

    def test_level1_update_rule(self):
        """GSplit' = P_G / (P_G + P_C), exactly (Section IV.B)."""
        mapper = self.make()
        obs = make_obs(1e9, 0.889, gpu_rate=100.0e9, core_rates=[10e9, 10e9, 10e9])
        mapper.observe(obs)
        assert mapper.gsplit(1e9) == pytest.approx(100.0 / 130.0)

    def test_level2_update_rule(self):
        """CSplit_i' = P_Ci / sum_j P_Cj."""
        mapper = self.make()
        obs = make_obs(1e9, 0.5, gpu_rate=100e9, core_rates=[10e9, 20e9, 30e9])
        mapper.observe(obs)
        assert np.allclose(mapper.csplits(), [10 / 60, 20 / 60, 30 / 60])

    def test_convergence_under_stationary_rates(self):
        """Repeated observations converge to the true rate ratio."""
        mapper = self.make()
        g_rate, c_rates = 150e9, [9e9, 10e9, 11e9]
        for _ in range(12):
            gs = mapper.gsplit(5e11)
            cs = mapper.csplits()
            mapper.observe(make_obs(5e11, gs, g_rate, c_rates, csplits=list(cs)))
        assert mapper.gsplit(5e11) == pytest.approx(150 / 180, abs=1e-6)
        assert np.allclose(mapper.csplits(), np.array(c_rates) / 30e9, atol=1e-6)

    def test_bins_are_independent(self):
        mapper = self.make()
        mapper.observe(make_obs(1e9, 0.889, 100e9, [10e9] * 3))
        assert mapper.gsplit(9e11) == 0.889  # far-away bin untouched

    def test_zero_gpu_work_respects_floor(self):
        mapper = AdaptiveMapper(0.5, 3, max_workload=1e12, min_gsplit=0.01)
        obs = Observation(1e9, 0.0, 0.0, (3e8, 3e8, 4e8), (0.1, 0.1, 0.1))
        mapper.observe(obs)
        assert mapper.gsplit(1e9) == 0.01

    def test_literal_paper_rule_with_zero_floor(self):
        mapper = AdaptiveMapper(0.5, 3, max_workload=1e12, min_gsplit=0.0)
        obs = Observation(1e9, 0.0, 0.0, (3e8, 3e8, 4e8), (0.1, 0.1, 0.1))
        mapper.observe(obs)
        assert mapper.gsplit(1e9) == 0.0

    def test_unmeasurable_round_is_skipped(self):
        mapper = self.make()
        mapper.observe(Observation(1e9, 0.0, 0.0, (0.0,) * 3, (0.0,) * 3))
        assert mapper.gsplit(1e9) == 0.889  # unchanged
        assert np.allclose(mapper.csplits(), [1 / 3] * 3)

    def test_core_starvation_floor(self):
        mapper = AdaptiveMapper(0.5, 2, max_workload=1e12, min_csplit=0.05)
        # One core 100x faster: raw rule would starve the slow one to ~1%.
        mapper.observe(make_obs(1e9, 0.5, 100e9, [100e9, 1e9]))
        cs = mapper.csplits()
        assert cs.min() >= 0.05 - 1e-12
        assert cs.sum() == pytest.approx(1.0)

    def test_overhead_accounting(self):
        mapper = self.make()
        assert mapper.total_overhead_seconds == 0.0
        mapper.observe(make_obs(1e9, 0.889, 100e9, [10e9] * 3))
        assert mapper.total_overhead_seconds == pytest.approx(update_overhead_seconds())
        # The paper's claim: overhead is negligible (well under a millisecond).
        assert update_overhead_seconds() < 1e-4

    @given(
        st.floats(1e9, 1e12),
        st.floats(0.05, 0.95),
        st.floats(1e9, 1e12),
        st.lists(st.floats(1e8, 1e11), min_size=2, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_splits_stay_valid(self, workload, gsplit, gpu_rate, core_rates):
        mapper = AdaptiveMapper(0.5, len(core_rates), max_workload=1e12)
        mapper.observe(make_obs(workload, gsplit, gpu_rate, core_rates))
        assert 0.0 <= mapper.gsplit(workload) <= 1.0
        cs = mapper.csplits()
        assert np.all(cs >= 0)
        assert cs.sum() == pytest.approx(1.0)

    @given(st.floats(5e9, 5e11), st.floats(1e9, 1e12), st.lists(st.floats(1e9, 5e10), min_size=3, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_property_fixed_point_is_rate_ratio(self, workload, gpu_rate, core_rates):
        mapper = AdaptiveMapper(0.5, 3, max_workload=1e12, min_gsplit=0.0, min_csplit=0.0)
        for _ in range(25):
            gs = mapper.gsplit(workload)
            cs = mapper.csplits()
            mapper.observe(make_obs(workload, gs, gpu_rate, core_rates, csplits=list(cs)))
        expected = gpu_rate / (gpu_rate + sum(core_rates))
        assert mapper.gsplit(workload) == pytest.approx(expected, rel=1e-3)


class TestStaticMapper:
    def test_fixed_everything(self):
        mapper = StaticMapper(0.889, 3)
        mapper.observe(make_obs(1e9, 0.889, 1e9, [1e9] * 3))
        assert mapper.gsplit(1e9) == 0.889
        assert mapper.gsplit(1e15) == 0.889
        assert np.allclose(mapper.csplits(), [1 / 3] * 3)
        assert mapper.total_overhead_seconds == 0.0

    def test_does_not_adapt_flag(self):
        assert StaticMapper(0.5, 2).adapts_at_runtime is False


class TestQilinMapper:
    def make(self):
        return QilinMapper(0.889, 3, max_workload=1e12, n_bins=8)

    def test_training_updates_then_freeze(self):
        mapper = self.make()
        mapper.observe(make_obs(1e9, 0.889, 100e9, [10e9] * 3))
        trained = mapper.gsplit(1e9)
        assert trained == pytest.approx(100 / 130)
        mapper.freeze()
        # Run-time conditions changed (GPU slower); mapping must not move.
        mapper.observe(make_obs(1e9, trained, 50e9, [10e9] * 3))
        assert mapper.gsplit(1e9) == trained

    def test_training_observation_count(self):
        mapper = self.make()
        mapper.observe(make_obs(1e9, 0.889, 100e9, [10e9] * 3))
        mapper.freeze()
        mapper.observe(make_obs(1e9, 0.5, 100e9, [10e9] * 3))
        assert mapper.training_observations == 1

    def test_paper_training_energy(self):
        """Section VI.C: 2 h at 18.5 kW = 37 kWh per cabinet."""
        mapper = self.make()
        mapper.record_training_time(2 * 3600.0)
        assert mapper.training_energy_kwh(18.5) == pytest.approx(37.0)
        # Full system: 80 cabinets' worth of training energy.
        assert 80 * mapper.training_energy_kwh(18.5) == pytest.approx(2960.0)

    def test_cannot_record_training_after_freeze(self):
        mapper = self.make()
        mapper.freeze()
        with pytest.raises(ValueError):
            mapper.record_training_time(10.0)

    def test_frozen_property(self):
        mapper = self.make()
        assert not mapper.frozen
        mapper.freeze()
        assert mapper.frozen
        assert mapper.total_overhead_seconds == 0.0
