"""Unit tests for the split databases (Section IV.B)."""

import numpy as np
import pytest

from repro.core.split import CoreSplitDatabase, SplitDatabase


class TestSplitDatabase:
    def make(self, n_bins=10, max_w=1000.0, initial=0.889):
        return SplitDatabase(n_bins, max_w, initial)

    def test_initial_value_everywhere(self):
        db = self.make()
        assert db.lookup(1.0) == 0.889
        assert db.lookup(999.0) == 0.889

    def test_bin_ranges_match_paper_formula(self):
        # Item i covers [(i-1)*W/J + 1, i*W/J] (1-based i).
        db = self.make(n_bins=4, max_w=400.0)
        assert db.bin_index(1.0) == 0
        assert db.bin_index(100.0) == 0
        assert db.bin_index(101.0) == 1
        assert db.bin_index(400.0) == 3

    def test_out_of_range_clamps(self):
        db = self.make(n_bins=4, max_w=400.0)
        assert db.bin_index(1e9) == 3
        assert db.bin_index(0.0) == 0

    def test_store_updates_only_its_bin(self):
        db = self.make(n_bins=4, max_w=400.0)
        db.store(150.0, 0.5)
        assert db.lookup(150.0) == 0.5
        assert db.lookup(50.0) == 0.889
        assert db.lookup(350.0) == 0.889

    def test_same_range_shares_mapping(self):
        """Two problems in the same workload range use the same item."""
        db = self.make(n_bins=4, max_w=400.0)
        db.store(110.0, 0.7)
        assert db.lookup(180.0) == 0.7

    def test_history_records_writes(self):
        db = self.make()
        db.store(100.0, 0.5)
        db.store(900.0, 0.6)
        assert len(db.history) == 2
        assert db.history[0].workload == 100.0
        assert db.history[1].value == 0.6

    def test_written_mask(self):
        db = self.make(n_bins=4, max_w=400.0)
        db.store(150.0, 0.5)
        assert db.written_mask().tolist() == [False, True, False, False]

    def test_bin_range(self):
        db = self.make(n_bins=4, max_w=400.0)
        assert db.bin_range(1) == (100.0, 200.0)

    def test_rejects_bad_value(self):
        db = self.make()
        with pytest.raises(ValueError):
            db.store(10.0, 1.5)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SplitDatabase(0, 100.0, 0.5)
        with pytest.raises(ValueError):
            SplitDatabase(4, -1.0, 0.5)

    def test_len(self):
        assert len(self.make(n_bins=7)) == 7


class TestCoreSplitDatabase:
    def test_initial_is_uniform(self):
        db = CoreSplitDatabase(3)
        assert np.allclose(db.lookup(), [1 / 3, 1 / 3, 1 / 3])

    def test_store_and_lookup(self):
        db = CoreSplitDatabase(3)
        db.store([0.5, 0.3, 0.2])
        assert np.allclose(db.lookup(), [0.5, 0.3, 0.2])

    def test_lookup_returns_copy(self):
        db = CoreSplitDatabase(2)
        values = db.lookup()
        values[0] = 99.0
        assert db.lookup()[0] == 0.5

    def test_rejects_wrong_length(self):
        db = CoreSplitDatabase(3)
        with pytest.raises(ValueError):
            db.store([0.5, 0.5])

    def test_rejects_bad_sum(self):
        db = CoreSplitDatabase(2)
        with pytest.raises(ValueError):
            db.store([0.6, 0.6])

    def test_rejects_negative(self):
        db = CoreSplitDatabase(2)
        with pytest.raises(ValueError):
            db.store([1.2, -0.2])

    def test_history(self):
        db = CoreSplitDatabase(2)
        db.store([0.7, 0.3])
        db.store([0.6, 0.4])
        assert len(db.history) == 2
        assert np.allclose(db.history[0], [0.7, 0.3])
