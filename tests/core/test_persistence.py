"""Tests for mapping-database persistence across runs."""

import json
import os

import numpy as np
import pytest

from repro import obs

from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.core.persistence import load_mapper, mapper_state, restore_mapper, save_mapper
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from repro.util.units import dgemm_flops


def trained_mapper():
    mapper = AdaptiveMapper(0.889, 3, max_workload=1e12, n_bins=16)
    from tests.core.test_mappers import make_obs

    mapper.observe(make_obs(2e11, 0.889, 150e9, [9e9, 10e9, 11e9]))
    mapper.observe(make_obs(8e11, 0.889, 180e9, [9e9, 10e9, 11e9]))
    return mapper


class TestRoundTrip:
    def test_state_restores_identically(self):
        mapper = trained_mapper()
        clone = restore_mapper(mapper_state(mapper))
        assert np.array_equal(clone.database_g.values(), mapper.database_g.values())
        assert np.array_equal(clone.database_g.written_mask(), mapper.database_g.written_mask())
        assert np.allclose(clone.csplits(), mapper.csplits())
        assert clone.updates == mapper.updates
        assert clone.min_gsplit == mapper.min_gsplit

    def test_file_roundtrip(self, tmp_path):
        mapper = trained_mapper()
        path = save_mapper(mapper, tmp_path / "db.json")
        clone = load_mapper(path)
        assert clone.gsplit(2e11) == mapper.gsplit(2e11)
        assert clone.gsplit(8e11) == mapper.gsplit(8e11)

    def test_restored_mapper_keeps_learning(self):
        mapper = restore_mapper(mapper_state(trained_mapper()))
        from tests.core.test_mappers import make_obs

        before = mapper.gsplit(2e11)
        mapper.observe(make_obs(2e11, before, 60e9, [10e9] * 3))
        assert mapper.gsplit(2e11) != before

    def test_version_checked(self):
        state = mapper_state(trained_mapper())
        state["version"] = 99
        with pytest.raises(ValueError):
            restore_mapper(state)


class TestAtomicSave:
    def test_no_temp_files_left_behind(self, tmp_path):
        save_mapper(trained_mapper(), tmp_path / "db.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["db.json"]

    def test_overwrite_is_complete(self, tmp_path):
        path = tmp_path / "db.json"
        save_mapper(trained_mapper(), path)
        mapper = trained_mapper()
        from tests.core.test_mappers import make_obs

        mapper.observe(make_obs(5e11, 0.889, 170e9, [9e9, 10e9, 11e9]))
        save_mapper(mapper, path)
        assert json.loads(path.read_text())["state"]["updates"] == 3
        assert sorted(p.name for p in tmp_path.iterdir()) == ["db.json"]

    def test_failed_write_keeps_old_file_and_leaves_no_temp(self, tmp_path, monkeypatch):
        path = tmp_path / "db.json"
        save_mapper(trained_mapper(), path)
        before = path.read_text()

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            save_mapper(trained_mapper(), path)
        assert path.read_text() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["db.json"]

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        save_mapper(trained_mapper(), "db.json")
        assert (tmp_path / "db.json").exists()


class TestTelemetryAcrossPersistence:
    """Metric state is never persisted: it survives in the live registry or
    is reset explicitly — no silent half-state (see restore_mapper)."""

    def observe_once(self, mapper, workload=2e11):
        from tests.core.test_mappers import make_obs

        mapper.observe(make_obs(workload, 0.889, 150e9, [9e9, 10e9, 11e9]))

    def test_restore_with_fresh_registry_starts_from_zero(self, tmp_path):
        telemetry = obs.Telemetry()
        mapper = AdaptiveMapper(0.889, 3, max_workload=1e12, telemetry=telemetry)
        self.observe_once(mapper)
        path = save_mapper(mapper, tmp_path / "db.json")

        fresh = obs.Telemetry()
        clone = load_mapper(path, telemetry=fresh)
        assert clone.updates == 1  # learned state restored from the file...
        assert fresh.metrics.counter("adaptive.updates").value() == 0.0  # ...metrics not

        self.observe_once(clone)
        assert clone.updates == 2
        assert fresh.metrics.counter("adaptive.updates").value() == 1.0
        assert fresh.metrics.series("adaptive.gsplit").points()[0][0] == 2.0

    def test_restore_onto_live_registry_keeps_accumulating(self, tmp_path):
        telemetry = obs.Telemetry()
        mapper = AdaptiveMapper(0.889, 3, max_workload=1e12, telemetry=telemetry)
        self.observe_once(mapper)
        path = save_mapper(mapper, tmp_path / "db.json")

        clone = load_mapper(path, telemetry=telemetry)
        self.observe_once(clone)
        assert telemetry.metrics.counter("adaptive.updates").value() == 2.0

    def test_explicit_reset_gives_clean_slate(self, tmp_path):
        telemetry = obs.Telemetry()
        mapper = AdaptiveMapper(0.889, 3, max_workload=1e12, telemetry=telemetry)
        self.observe_once(mapper)
        path = save_mapper(mapper, tmp_path / "db.json")

        telemetry.metrics.reset()
        clone = load_mapper(path, telemetry=telemetry)
        assert telemetry.metrics.counter("adaptive.updates").value() == 0.0
        self.observe_once(clone)
        assert telemetry.metrics.counter("adaptive.updates").value() == 1.0

    def test_roundtrip_learned_state_unaffected_by_telemetry(self, tmp_path):
        telemetry = obs.Telemetry()
        traced = AdaptiveMapper(0.889, 3, max_workload=1e12, telemetry=telemetry)
        plain = AdaptiveMapper(0.889, 3, max_workload=1e12)
        self.observe_once(traced)
        self.observe_once(plain)
        t_clone = load_mapper(save_mapper(traced, tmp_path / "t.json"))
        p_clone = load_mapper(save_mapper(plain, tmp_path / "p.json"))
        assert np.array_equal(t_clone.database_g.values(), p_clone.database_g.values())
        assert np.allclose(t_clone.csplits(), p_clone.csplits())


class TestSecondProcessProtocol:
    """The paper's cross-run persistence: a fresh 'process' starts warm."""

    def test_warm_start_beats_cold_start(self):
        n = 4096
        # Process 1: learn.
        element1 = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        mapper1 = AdaptiveMapper(
            element1.initial_gsplit, 3, max_workload=dgemm_flops(2 * n, 2 * n, 2 * n)
        )
        engine1 = HybridDgemm(element1, mapper1, jitter=False)
        for _ in range(4):
            engine1.run_to_completion(n, n, n)
        state = mapper_state(mapper1)

        # Process 2 (fresh simulator/element): starts from the saved DBs.
        element2 = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        warm = HybridDgemm(element2, restore_mapper(state), jitter=False)
        warm_first = warm.run_to_completion(n, n, n)

        element3 = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        cold_mapper = AdaptiveMapper(
            element3.initial_gsplit, 3, max_workload=dgemm_flops(2 * n, 2 * n, 2 * n)
        )
        cold = HybridDgemm(element3, cold_mapper, jitter=False)
        cold_first = cold.run_to_completion(n, n, n)

        assert warm_first.gflops > cold_first.gflops
