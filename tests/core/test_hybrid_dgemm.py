"""Unit and integration tests for the HybridDgemm executor."""

import numpy as np
import pytest

from repro.core.hybrid_dgemm import HybridDgemm, cpu_only_dgemm
from repro.core.static_map import StaticMapper
from repro.machine.variability import NO_VARIABILITY, VariabilitySpec
from tests.conftest import build_adaptive_mapper, build_element


def make_element(variability=NO_VARIABILITY, seed=0):
    return build_element(variability=variability, rng_seed=seed)


def make_adaptive(element, **kw):
    return build_adaptive_mapper(element, 20000, k=20000, slack=1.0, **kw)


class TestNumericCorrectness:
    @pytest.mark.parametrize("pipelined", [False, True])
    def test_full_alpha_beta(self, pipelined):
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(0.7, 3), pipelined=pipelined, jitter=False)
        rng = np.random.default_rng(0)
        m, n, k = 400, 350, 220
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        c0 = c.copy()
        hd.run_to_completion(m, n, k, a=a, b=b, c=c, alpha=1.5, beta=-0.5)
        assert np.allclose(c, 1.5 * (a @ b) - 0.5 * c0)

    def test_adaptive_numeric_stays_correct_across_runs(self):
        """The result must be right regardless of how the split moves."""
        element = make_element()
        hd = HybridDgemm(element, make_adaptive(element), jitter=False)
        rng = np.random.default_rng(1)
        for _ in range(4):
            a = rng.standard_normal((150, 80))
            b = rng.standard_normal((80, 120))
            c = np.zeros((150, 120))
            hd.run_to_completion(150, 120, 80, a=a, b=b, c=c, alpha=1.0, beta=0.0)
            assert np.allclose(c, a @ b)

    def test_gpu_only_split(self):
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(1.0, 3), jitter=False)
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((64, 32)), rng.standard_normal((32, 48))
        c = np.zeros((64, 48))
        res = hd.run_to_completion(64, 48, 32, a=a, b=b, c=c, beta=0.0)
        assert res.m1 == 64
        assert res.core_rows == (0, 0, 0)
        assert np.allclose(c, a @ b)

    def test_cpu_only_split(self):
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(0.0, 3), jitter=False)
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal((64, 32)), rng.standard_normal((32, 48))
        c = np.zeros((64, 48))
        res = hd.run_to_completion(64, 48, 32, a=a, b=b, c=c, beta=0.0)
        assert res.m1 == 0
        assert np.allclose(c, a @ b)

    def test_shape_validation(self):
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(0.5, 3))
        with pytest.raises(ValueError):
            hd.run_to_completion(10, 10, 10, a=np.zeros((5, 5)), b=np.zeros((10, 10)), c=np.zeros((10, 10)))


class TestTimingBehaviour:
    def test_result_fields_consistent(self):
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(0.889, 3), jitter=False)
        res = hd.run_to_completion(8192, 8192, 1216)
        assert res.t_total >= max(res.t_gpu, res.t_cpu) * 0.999
        assert res.m1 + sum(res.core_rows) == 8192
        assert res.gflops > 0
        assert res.workload == 2.0 * 8192 * 8192 * 1216

    def test_makespan_is_slowest_path(self):
        """'The end time is the last who finishes' (Section IV.A)."""
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(0.889, 3), jitter=False)
        res = hd.run_to_completion(10000, 10000, 1216)
        assert res.t_total == pytest.approx(max(res.t_gpu, res.t_cpu), rel=1e-3)

    def test_adaptive_beats_static_after_warmup(self):
        n = 4096
        static_el = make_element()
        static = HybridDgemm(static_el, StaticMapper(static_el.initial_gsplit, 3), jitter=False)
        t_static = static.run_to_completion(n, n, n).t_total

        adaptive_el = make_element()
        adaptive = HybridDgemm(adaptive_el, make_adaptive(adaptive_el), jitter=False)
        for _ in range(4):
            res = adaptive.run_to_completion(n, n, n)
        assert res.t_total < t_static

    def test_pipelined_beats_sync_above_texture_limit(self):
        n = 12288
        sync_el = make_element()
        sync = HybridDgemm(sync_el, StaticMapper(1.0, 3), pipelined=False, jitter=False)
        pipe_el = make_element()
        pipe = HybridDgemm(pipe_el, StaticMapper(1.0, 3), pipelined=True, jitter=False)
        assert pipe.run_to_completion(n, n, n).t_total < sync.run_to_completion(n, n, n).t_total

    def test_no_pipeline_benefit_at_or_below_8192(self):
        n = 8192
        sync_el = make_element()
        sync = HybridDgemm(sync_el, StaticMapper(1.0, 3), pipelined=False, jitter=False)
        pipe_el = make_element()
        pipe = HybridDgemm(pipe_el, StaticMapper(1.0, 3), pipelined=True, jitter=False)
        t_sync = sync.run_to_completion(n, n, n, beta_nonzero=False).t_total
        t_pipe = pipe.run_to_completion(n, n, n, beta_nonzero=False).t_total
        assert t_pipe == pytest.approx(t_sync, rel=1e-6)

    def test_mapper_overhead_negligible(self):
        """Adaptive overhead must be tiny relative to the DGEMM itself."""
        element = make_element()
        hd = HybridDgemm(element, make_adaptive(element), jitter=False)
        res = hd.run_to_completion(8192, 8192, 1216)
        assert res.mapper_overhead > 0
        assert res.mapper_overhead < 1e-4 * res.t_total

    def test_static_mapper_no_overhead(self):
        element = make_element()
        hd = HybridDgemm(element, StaticMapper(0.889, 3), jitter=False)
        assert hd.run_to_completion(4096, 4096, 1216).mapper_overhead == 0.0

    def test_level2_balances_heterogeneous_cores(self):
        """With the L2-share penalty active, per-core splits must converge so
        the slow core gets proportionally fewer rows."""
        var = VariabilitySpec(
            core_jitter_sigma=0.0, gpu_jitter_sigma=0.0, element_spread_sigma=0.0,
            l2_share_penalty=0.3, thermal_drift_depth=0.0,
        )
        element = make_element(var)
        mapper = make_adaptive(element)
        hd = HybridDgemm(element, mapper, pipelined=True, jitter=False)
        for _ in range(6):
            hd.run_to_completion(12288, 12288, 1216)
        cs = mapper.csplits()
        # Compute cores are 1, 2, 3; core 1 shares L2 with transfer core 0.
        assert cs[0] < cs[1] and cs[0] < cs[2]
        # Fixed point: rates (0.7r, r, r) -> splits (0.7, 1, 1)/2.7.
        assert cs[0] == pytest.approx(0.7 / 2.7, abs=0.03)

    def test_observation_fed_to_mapper(self):
        element = make_element()
        mapper = make_adaptive(element)
        hd = HybridDgemm(element, mapper, jitter=False)
        hd.run_to_completion(4096, 4096, 1216)
        assert mapper.updates == 1
        assert len(mapper.database_g.history) == 1


class TestCpuOnly:
    def test_uses_all_four_cores(self):
        element = make_element()
        sim = element.sim
        n = 4096
        elapsed = sim.run(until=sim.process(cpu_only_dgemm(element, n, n, n, jitter=False)))
        rate = 2.0 * n**3 / elapsed
        # 4 cores at 10.12 GFLOPS x 0.885 efficiency.
        assert rate == pytest.approx(4 * 10.12e9 * 0.885, rel=0.01)

    def test_cpu_only_beats_three_core_share(self):
        """A host-only run outperforms the hybrid CPU portion alone (4 vs 3 cores)."""
        element = make_element()
        sim = element.sim
        elapsed = sim.run(until=sim.process(cpu_only_dgemm(element, 1024, 1024, 1024, jitter=False)))
        three_core = 2.0 * 1024**3 / (3 * 10.12e9 * 0.885)
        assert elapsed < three_core
