"""Unit tests for the software pipeline and its synchronous counterpart."""

import numpy as np
import pytest

from repro.core.pipeline import EO, IDLE, INPUT, N_INPUT, SoftwarePipeline, SyncExecutor
from repro.core.taskqueue import build_task_queue
from tests.conftest import build_element as make_element


def run_executor(executor, queue, rate):
    sim = executor.sim
    return sim.run(until=sim.process(executor.execute(queue, rate)))


def multi_task_queue(n=16384, k=1216, beta=False):
    return build_task_queue(n, n, k, beta_nonzero=beta, gpu_memory_bytes=1e9)


class TestSyncExecutor:
    def test_duration_is_sum_of_phases(self):
        element = make_element()
        queue = build_task_queue(4096, 4096, 1216, beta_nonzero=False)
        rate = 100e9
        result = run_executor(SyncExecutor(element, jitter=False), queue, rate)
        t_in = element.pcie.duration(queue.input_bytes)
        t_kernel = element.spec.gpu.kernel_launch_overhead + queue.tasks[0].flops / rate
        t_out = element.pcie.duration(queue.output_bytes)
        # Serial input -> kernel -> output (latencies per chunk add a little).
        assert result.duration == pytest.approx(t_in + t_kernel + t_out, rel=0.05)

    def test_empty_queue(self):
        element = make_element()
        queue = build_task_queue(0, 100, 100)
        result = run_executor(SyncExecutor(element), queue, 1e9)
        assert result.duration == 0.0
        assert result.n_tasks == 0


class TestSoftwarePipeline:
    def test_faster_than_sync_with_multiple_tasks(self):
        queue = multi_task_queue()
        rate = 150e9
        sync = run_executor(SyncExecutor(make_element(), jitter=False), queue, rate)
        pipe = run_executor(SoftwarePipeline(make_element(), jitter=False), queue, rate)
        assert pipe.n_tasks > 1
        assert pipe.duration < sync.duration

    def test_single_task_degenerates_to_sync(self):
        """Section VI.B: no benefit when only one task is in the queue."""
        queue = build_task_queue(4096, 4096, 1216, beta_nonzero=False)
        assert len(queue) == 1
        rate = 150e9
        sync = run_executor(SyncExecutor(make_element(), jitter=False), queue, rate)
        pipe = run_executor(SoftwarePipeline(make_element(), jitter=False), queue, rate)
        assert pipe.duration == pytest.approx(sync.duration, rel=1e-9)

    def test_kernel_time_cannot_be_hidden(self):
        """Pipeline duration is bounded below by total kernel time."""
        queue = multi_task_queue()
        rate = 150e9
        element = make_element()
        pipe = run_executor(SoftwarePipeline(element, jitter=False), queue, rate)
        total_kernel = sum(
            element.spec.gpu.kernel_launch_overhead + t.flops / rate for t in queue.tasks
        )
        assert pipe.duration >= total_kernel * 0.999

    def test_compute_bound_pipeline_hides_almost_all_transfers(self):
        """When kernels dominate, duration ~ prologue + kernels + epilogue (§V.B)."""
        queue = multi_task_queue()
        slow_rate = 30e9  # make kernels dominate transfers decisively
        element = make_element()
        pipe = run_executor(SoftwarePipeline(element, jitter=False), queue, slow_rate)
        total_kernel = sum(
            element.spec.gpu.kernel_launch_overhead + t.flops / slow_rate for t in queue.tasks
        )
        prologue = element.pcie.duration(queue.tasks[0].input_bytes)
        assert pipe.duration == pytest.approx(total_kernel + prologue, rel=0.02)

    def test_transfer_bound_pipeline_limited_by_link(self):
        """When transfers dominate, duration ~ host-hop time of all bytes.

        The host-side hop is the bottleneck; the fast GPU-side hop of one
        transfer overlaps the host hop of the next, so total time approaches
        bytes / host_bw rather than the serial two-hop sum.
        """
        queue = multi_task_queue()
        fast_rate = 1e15  # kernels are instantaneous
        element = make_element()
        pipe = run_executor(SoftwarePipeline(element, jitter=False), queue, fast_rate)
        total_bytes = queue.input_bytes + queue.output_bytes
        host_hop = total_bytes / element.spec.pcie.pinned_bw
        two_hop = element.pcie.duration(total_bytes)
        assert host_hop * 0.99 <= pipe.duration <= two_hop

    def test_input_overlaps_previous_eo(self):
        """NT's N-INPUT must begin while CT is still in EO (Fig. 7)."""
        queue = multi_task_queue()
        element = make_element()
        pipe = SoftwarePipeline(element, jitter=False, record_states=True)
        result = run_executor(pipe, queue, 150e9)
        log = result.state_log
        # Find CT's EO start for task 0 and NT's N-INPUT for task 1.
        eo0 = next(r for r in log if r.controller == "CT" and r.state == EO)
        nin1 = next(r for r in log if r.controller == "NT" and r.state == N_INPUT)
        eo0_end = next(
            r.time for r in log if r.controller == "CT" and r.state == EO and r.task != eo0.task
        )
        assert eo0.time <= nin1.time < eo0_end

    def test_state_log_sequence_matches_table1(self):
        """First transitions follow Table I: CT Idle->Input->EO; NT N-Idle->N-Input."""
        queue = multi_task_queue()
        pipe = SoftwarePipeline(make_element(), jitter=False, record_states=True)
        result = run_executor(pipe, queue, 150e9)
        ct = [r.state for r in result.state_log if r.controller == "CT"]
        assert ct[:3] == [IDLE, INPUT, EO]
        # After the prologue, CT never enters INPUT again (all inputs prefetched).
        assert INPUT not in ct[3:]
        nt = [r.state for r in result.state_log if r.controller == "NT"]
        assert nt[0] == "N-Idle"
        assert N_INPUT in nt

    def test_schedule_rows_render(self):
        queue = multi_task_queue()
        pipe = SoftwarePipeline(make_element(), jitter=False, record_states=True)
        result = run_executor(pipe, queue, 150e9)
        rows = result.schedule_rows()
        assert len(rows) == len(result.state_log)
        assert any(row[EO] for row in rows)

    def test_numeric_mode_computes_correct_product(self):
        from repro.core.pipeline import NumericContext

        rng = np.random.default_rng(3)
        m1, n, k = 500, 400, 300
        a1 = rng.standard_normal((m1, k))
        b = rng.standard_normal((k, n))
        c1 = rng.standard_normal((m1, n))
        c0 = c1.copy()
        queue = build_task_queue(m1, n, k, texture_limit=256, beta_nonzero=True)
        assert len(queue) > 4  # exercise multi-task and K-splitting
        element = make_element()
        ctx = NumericContext(a1=a1, b=b, c1=c1, alpha=2.0, beta=0.5)
        run_executor_numeric(element, queue, ctx)
        assert np.allclose(c1, 2.0 * (a1 @ b) + 0.5 * c0)

    def test_numeric_mode_beta_zero(self):
        from repro.core.pipeline import NumericContext

        rng = np.random.default_rng(4)
        m1, n, k = 300, 300, 700
        a1 = rng.standard_normal((m1, k))
        b = rng.standard_normal((k, n))
        c1 = np.full((m1, n), np.nan)  # beta=0 must not read C
        queue = build_task_queue(m1, n, k, texture_limit=256, beta_nonzero=False)
        element = make_element()
        ctx = NumericContext(a1=a1, b=b, c1=c1, alpha=1.0, beta=0.0)
        run_executor_numeric(element, queue, ctx)
        assert np.allclose(c1, a1 @ b)


def run_executor_numeric(element, queue, ctx):
    pipe = SoftwarePipeline(element, jitter=False)
    sim = element.sim
    return sim.run(until=sim.process(pipe.execute(queue, 150e9, ctx)))
