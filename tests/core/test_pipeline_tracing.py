"""Interval tracing through the executors + Gantt rendering."""

from repro.core.pipeline import SoftwarePipeline, SyncExecutor
from repro.core.taskqueue import build_task_queue
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator, Tracer
from repro.sim.gantt import render_tracer


def run_traced(executor_cls):
    sim = Simulator()
    element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
    tracer = Tracer(sim)
    queue = build_task_queue(16384, 16384, 1216, beta_nonzero=False, gpu_memory_bytes=1e9)
    executor = executor_cls(element, jitter=False, tracer=tracer)
    sim.run(until=sim.process(executor.execute(queue, 150e9)))
    return tracer


class TestExecutorTracing:
    def test_pipeline_inputs_overlap_previous_eo(self):
        tracer = run_traced(SoftwarePipeline)
        eo0 = tracer.intervals(actor="T0", phase="eo")[0]
        in1 = tracer.intervals(actor="T1", phase="input")[0]
        assert eo0.overlaps(in1)

    def test_sync_never_overlaps(self):
        tracer = run_traced(SyncExecutor)
        spans = tracer.intervals()
        for a in spans:
            for b in spans:
                if a is not b:
                    assert not a.overlaps(b), f"{a} overlaps {b} in sync mode"

    def test_every_task_has_eo_interval(self):
        tracer = run_traced(SoftwarePipeline)
        eos = tracer.intervals(phase="eo")
        assert len(eos) == 4

    def test_gantt_renders(self):
        tracer = run_traced(SoftwarePipeline)
        out = render_tracer(tracer, width=60)
        assert "T0.eo" in out
        assert "legend:" in out

    def test_no_tracer_no_crash(self):
        sim = Simulator()
        element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
        queue = build_task_queue(10000, 10000, 1216, beta_nonzero=False)
        executor = SoftwarePipeline(element, jitter=False)
        result = sim.run(until=sim.process(executor.execute(queue, 150e9)))
        assert result.duration > 0
