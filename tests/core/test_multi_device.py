"""Tests for the dual-GPU element and the multi-device mapper extension."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.core.multi_device import (
    DualGpuDgemm,
    MultiDeviceMapper,
    MultiSplitDatabase,
)
from repro.machine.dual import DualGpuElement
from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from repro.util.units import dgemm_flops


def make_dual():
    sim = Simulator()
    return DualGpuElement(sim, tianhe1_element(), variability=NO_VARIABILITY)


def make_dual_engine(pipelined=True):
    element = make_dual()
    mapper = MultiDeviceMapper(
        element.initial_device_splits(), 3,
        max_workload=dgemm_flops(2 * 16384, 2 * 16384, 2 * 16384),
    )
    return element, mapper, DualGpuDgemm(element, mapper, pipelined=pipelined, jitter=False)


class TestDualGpuElement:
    def test_two_chips(self):
        element = make_dual()
        assert len(element.gpus) == 2
        assert element.gpu2.name.endswith("gpu2")
        assert element.gpu2.peak_flops == element.gpu.peak_flops

    def test_peak_counts_both_chips(self):
        element = make_dual()
        assert element.peak_flops == pytest.approx(2 * 240e9 + 40.48e9, rel=1e-3)

    def test_initial_splits_from_peaks(self):
        splits = make_dual().initial_device_splits()
        assert len(splits) == 3
        assert sum(splits) == pytest.approx(1.0)
        assert splits[0] == splits[1] > splits[2]

    def test_second_chip_runs_hotter(self):
        element = make_dual()
        t = 1e6  # fully warmed
        assert element.gpu2.drift(t) < element.gpu.drift(t)


class TestMultiSplitDatabase:
    def test_lookup_initial(self):
        db = MultiSplitDatabase(3, 8, 1e12, [0.45, 0.45, 0.10])
        assert np.allclose(db.lookup(5e11), [0.45, 0.45, 0.10])

    def test_store_per_bin(self):
        db = MultiSplitDatabase(3, 8, 1e12, [0.45, 0.45, 0.10])
        db.store(5e11, np.array([0.5, 0.3, 0.2]))
        assert np.allclose(db.lookup(5e11), [0.5, 0.3, 0.2])
        assert np.allclose(db.lookup(1e11), [0.45, 0.45, 0.10])

    def test_validation(self):
        db = MultiSplitDatabase(2, 4, 1e12, [0.5, 0.5])
        with pytest.raises(ValueError):
            db.store(1e11, np.array([0.7, 0.7]))
        with pytest.raises(ValueError):
            MultiSplitDatabase(1, 4, 1e12, [1.0])


class TestMultiDeviceMapper:
    def test_update_rule_generalises_the_paper(self):
        mapper = MultiDeviceMapper([0.45, 0.45, 0.10], 3, max_workload=1e12)
        mapper.observe(1e11, [4.5e10, 4.5e10, 1e10], [0.3, 0.6, 0.5])
        # Rates: 150e9, 75e9, 20e9 -> fractions proportional.
        got = mapper.fractions(1e11)
        expected = np.array([150.0, 75.0, 20.0])
        assert np.allclose(got, expected / expected.sum(), atol=1e-6)

    def test_starvation_floor(self):
        mapper = MultiDeviceMapper([0.5, 0.4, 0.1], 3, max_workload=1e12, min_fraction=0.05)
        mapper.observe(1e11, [5e10, 4e10, 1e10], [0.1, 0.1, 1e6])
        assert mapper.fractions(1e11).min() >= 0.05 - 1e-12


class TestDualGpuDgemm:
    def test_runs_and_accounts(self):
        _, mapper, engine = make_dual_engine()
        result = engine.run_to_completion(16384, 16384, 1216)
        assert result.t_total > 0
        assert sum(result.fractions) == pytest.approx(1.0)
        assert mapper.updates == 1

    def test_both_chips_do_work(self):
        element, _, engine = make_dual_engine()
        engine.run_to_completion(16384, 16384, 1216)
        assert element.gpu.flops_done > 0
        assert element.gpu2.flops_done > 0

    def test_adaptive_convergence(self):
        _, mapper, engine = make_dual_engine()
        for _ in range(5):
            result = engine.run_to_completion(16384, 16384, 1216)
        # Device times roughly equalise at the fixed point.
        times = list(result.t_gpu) + [max(result.core_times)]
        assert max(times) / min(times) < 1.35

    def test_dual_beats_single_but_sublinearly(self):
        """Both chips help, but the shared PCIe slot caps the gain."""
        n, k = 16384, 1216
        single_el = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        single_mapper = AdaptiveMapper(
            single_el.initial_gsplit, 3, max_workload=dgemm_flops(2 * n, 2 * n, 2 * n)
        )
        single = HybridDgemm(single_el, single_mapper, pipelined=True, jitter=False)
        for _ in range(4):
            single_result = single.run_to_completion(n, n, k)

        _, _, dual_engine = make_dual_engine()
        for _ in range(4):
            dual_result = dual_engine.run_to_completion(n, n, k)

        speedup = dual_result.gflops / single_result.gflops
        assert 1.05 < speedup < 1.95, f"dual/single speedup {speedup:.2f}"
