"""Property-based tests for the two-level adaptive mapper.

The paper's update rule (GSplit := P_G / (P_G + P_C), CSplit_i := P_i / P_C)
must hold its invariants under *any* physically sensible measurement
sequence — arbitrary fault factors scaling the GPU rate, heterogeneous core
rates, degenerate splits — not just the trajectories the benchmarks happen
to produce.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveMapper, floor_normalize
from repro.core.persistence import (
    load_mapper,
    mapper_state,
    restore_mapper,
    save_mapper,
)
from repro.verify.invariants import check_convergence, check_mapper_databases
from tests.strategies import (
    fault_factors,
    observation_sequences,
    rate_pairs,
    workloads,
)

MAX_WORKLOAD = 1.6e13


def make_mapper(**kw) -> AdaptiveMapper:
    return AdaptiveMapper(0.889, 3, max_workload=MAX_WORKLOAD, **kw)


def stationary_observation(mapper: AdaptiveMapper, workload, p_g, p_c):
    """What the framework would measure at the mapper's current split under
    stationary device rates (cores all equal)."""
    from repro.core.adaptive import Observation

    gsplit = mapper.gsplit(workload)
    gpu_workload = gsplit * workload
    cpu_workload = workload - gpu_workload
    csplits = mapper.csplits()
    core_workloads = tuple(cpu_workload * c for c in csplits)
    per_core_rate = p_c / len(csplits)
    return Observation(
        workload=workload,
        gpu_workload=gpu_workload,
        gpu_time=gpu_workload / p_g if p_g > 0 else 0.0,
        core_workloads=core_workloads,
        core_times=tuple(w / per_core_rate for w in core_workloads),
    )


class TestGsplitClamping:
    @given(observation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_stored_splits_stay_in_bounds_under_arbitrary_faults(self, seq):
        mapper = make_mapper()
        for obs in seq:
            mapper.observe(obs)
            g = mapper.gsplit(obs.workload)
            assert 0.0 <= g <= 1.0
            assert g >= mapper.min_gsplit or g == 0.0
        assert check_mapper_databases(mapper) == []

    @given(observation_sequences(), workloads)
    @settings(max_examples=25, deadline=None)
    def test_every_bin_lookup_in_bounds(self, seq, probe):
        mapper = make_mapper()
        for obs in seq:
            mapper.observe(obs)
        assert 0.0 <= mapper.gsplit(probe) <= 1.0

    @given(observation_sequences())
    @settings(max_examples=25, deadline=None)
    def test_csplits_always_partition_unity(self, seq):
        mapper = make_mapper()
        for obs in seq:
            mapper.observe(obs)
            csplits = mapper.csplits()
            assert csplits.sum() == np.float64(1.0) or abs(csplits.sum() - 1.0) < 1e-9
            assert (csplits >= mapper.min_csplit - 1e-12).all()

    @given(observation_sequences())
    @settings(max_examples=15, deadline=None)
    def test_lost_gpu_reads_zero_but_database_survives(self, seq):
        mapper = make_mapper()
        for obs in seq:
            mapper.observe(obs)
        before = mapper.database_g.lookup(seq[-1].workload)
        mapper.notify_gpu_lost()
        assert mapper.gsplit(seq[-1].workload) == 0.0
        for obs in seq:
            mapper.observe(obs)  # observations while dead must not poison bins
        mapper.notify_gpu_restored()
        assert mapper.database_g.lookup(seq[-1].workload) == before


class TestStationaryConvergence:
    @given(rate_pairs, workloads)
    @settings(max_examples=30, deadline=None)
    def test_database_converges_to_rate_ratio(self, pair, workload):
        p_g, p_c = pair
        mapper = make_mapper()
        history = []
        for _ in range(12):
            mapper.observe(stationary_observation(mapper, workload, p_g, p_c))
            history.append(mapper.database_g.lookup(workload))
        expected = max(mapper.min_gsplit, p_g / (p_g + p_c))
        assert abs(history[-1] - expected) < 0.02
        if expected > mapper.min_gsplit:
            assert check_convergence(history, p_g, p_c) == []

    @given(rate_pairs, workloads)
    @settings(max_examples=15, deadline=None)
    def test_convergence_is_monotone_after_first_update(self, pair, workload):
        """One stationary measurement pins the bin; later ones keep it there."""
        p_g, p_c = pair
        mapper = make_mapper()
        mapper.observe(stationary_observation(mapper, workload, p_g, p_c))
        first = mapper.database_g.lookup(workload)
        mapper.observe(stationary_observation(mapper, workload, p_g, p_c))
        second = mapper.database_g.lookup(workload)
        assert abs(second - first) <= abs(first - max(mapper.min_gsplit, p_g / (p_g + p_c))) + 1e-9


class TestPersistenceRoundTrip:
    @given(observation_sequences())
    @settings(max_examples=25, deadline=None)
    def test_state_round_trip_preserves_all_lookups(self, seq):
        mapper = make_mapper()
        for obs in seq:
            mapper.observe(obs)
        restored = restore_mapper(mapper_state(mapper))
        for obs in seq:
            assert restored.gsplit(obs.workload) == mapper.gsplit(obs.workload)
        assert (restored.csplits() == mapper.csplits()).all()
        assert restored.updates == mapper.updates

    @given(observation_sequences(max_length=6))
    @settings(max_examples=10, deadline=None)
    def test_file_round_trip(self, tmp_path_factory, seq):
        mapper = make_mapper()
        for obs in seq:
            mapper.observe(obs)
        path = tmp_path_factory.mktemp("mapper_db") / "mapper.json"
        save_mapper(mapper, path)
        loaded = load_mapper(path)
        for obs in seq:
            assert loaded.gsplit(obs.workload) == mapper.gsplit(obs.workload)

    def test_warmed_mapper_file_round_trip(self, tmp_mapper_db, warmed_mapper):
        """The conftest fixtures: a real Linpack-warmed database survives disk."""
        loaded = load_mapper(tmp_mapper_db)
        probe = MAX_WORKLOAD / 2
        assert loaded.gsplit(probe) == warmed_mapper.gsplit(probe)
        assert (loaded.csplits() == warmed_mapper.csplits()).all()


class TestFloorNormalize:
    @given(
        st.lists(st.floats(1e-6, 1.0), min_size=2, max_size=8),
        st.floats(0.0, 0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_result_is_a_floored_partition(self, fractions, floor):
        result = floor_normalize(np.array(fractions), floor)
        assert abs(result.sum() - 1.0) < 1e-9
        assert (result >= floor - 1e-12).all()

    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_zero_floor_is_plain_normalisation(self, fractions):
        arr = np.array(fractions)
        result = floor_normalize(arr, 0.0)
        assert np.allclose(result, arr / arr.sum())
