"""Bounce-corner-turn ordering invariants (Section V.C, Fig. 5).

The serpentine order exists so consecutive tasks share an operand block;
these tests pin that adjacency property over arbitrary grids — including
degenerate single-row/column grids — plus the reuse accounting it implies
when the queue is built with residency tracking.
"""

from __future__ import annotations

import pytest

from repro.core.taskqueue import bounce_corner_turn_order, build_task_queue


class TestBounceCornerTurnOrder:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 5), (5, 1), (2, 2), (3, 4), (4, 3), (6, 6)])
    def test_covers_grid_exactly_once(self, rows, cols):
        order = bounce_corner_turn_order(rows, cols)
        assert len(order) == rows * cols
        assert set(order) == {(i, j) for i in range(rows) for j in range(cols)}

    @pytest.mark.parametrize("rows,cols", [(1, 5), (5, 1), (2, 2), (3, 4), (4, 3), (6, 6)])
    def test_consecutive_cells_share_row_or_column(self, rows, cols):
        order = bounce_corner_turn_order(rows, cols)
        for (i0, j0), (i1, j1) in zip(order, order[1:]):
            assert i0 == i1 or j0 == j1, (
                f"steps {(i0, j0)} -> {(i1, j1)} share no operand block"
            )

    @pytest.mark.parametrize("rows,cols", [(2, 3), (3, 4), (5, 5)])
    def test_consecutive_cells_are_grid_neighbours(self, rows, cols):
        order = bounce_corner_turn_order(rows, cols)
        for (i0, j0), (i1, j1) in zip(order, order[1:]):
            assert abs(i0 - i1) + abs(j0 - j1) == 1

    def test_paper_2x2_example(self):
        # T0, T1, T3, T2 in the paper's numbering.
        assert bounce_corner_turn_order(2, 2) == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_row_direction_alternates(self):
        order = bounce_corner_turn_order(3, 3)
        assert order[0:3] == [(0, 0), (0, 1), (0, 2)]
        assert order[3:6] == [(1, 2), (1, 1), (1, 0)]
        assert order[6:9] == [(2, 0), (2, 1), (2, 2)]

    def test_corner_turn_repeats_the_shared_column(self):
        # The row-to-row transition stays in the same column (the "bounce"),
        # so the B column block is already resident for the next task.
        order = bounce_corner_turn_order(4, 5)
        for row in range(3):
            last_of_row = order[(row + 1) * 5 - 1]
            first_of_next = order[(row + 1) * 5]
            assert last_of_row[1] == first_of_next[1]

    def test_empty_dimensions(self):
        assert bounce_corner_turn_order(0, 4) == []
        assert bounce_corner_turn_order(4, 0) == []


class TestQueueOrderAccounting:
    def test_task_indices_follow_serpentine(self):
        queue = build_task_queue(16384, 16384, 4096, texture_limit=8192)
        assert queue.grid == (2, 2, 1)
        visits = [(t.row, t.col) for t in queue.tasks]
        assert visits == bounce_corner_turn_order(2, 2)
        assert [t.index for t in queue.tasks] == list(range(len(queue.tasks)))

    def test_every_consecutive_pair_reuses_an_operand(self):
        queue = build_task_queue(24576, 24576, 4096, texture_limit=8192)
        for prev, cur in zip(queue.tasks, queue.tasks[1:]):
            assert not (cur.send_a and cur.send_b), (
                f"task {cur.index} re-stages both operands after task {prev.index}"
            )

    def test_reuse_beats_row_major(self):
        serpentine = build_task_queue(24576, 24576, 4096, texture_limit=8192)
        row_major = build_task_queue(24576, 24576, 4096, texture_limit=8192, reuse=False)
        assert serpentine.input_bytes < row_major.input_bytes
        assert serpentine.reuse_hits > 0
        assert row_major.reuse_hits == 0

    def test_k_split_keeps_kblock_inner_and_ordered(self):
        queue = build_task_queue(16384, 16384, 16384, texture_limit=8192)
        rows, cols, kblocks = queue.grid
        assert kblocks == 2
        for base in range(0, len(queue.tasks), kblocks):
            chunk = queue.tasks[base : base + kblocks]
            assert [t.kblock for t in chunk] == list(range(kblocks))
            assert len({(t.row, t.col) for t in chunk}) == 1
            assert chunk[0].is_first_k and chunk[-1].is_last_k

    def test_deterministic_rebuild(self):
        a = build_task_queue(24576, 16384, 8192, texture_limit=8192)
        b = build_task_queue(24576, 16384, 8192, texture_limit=8192)
        assert [(t.row, t.col, t.kblock, t.send_a, t.send_b) for t in a.tasks] == [
            (t.row, t.col, t.kblock, t.send_a, t.send_b) for t in b.tasks
        ]
        assert (a.input_bytes, a.reuse_hits, a.resends) == (
            b.input_bytes,
            b.reuse_hits,
            b.resends,
        )
