"""Unit tests for GpuTask accounting and TaskQueue statistics."""

import pytest

from repro.core.taskqueue import GpuTask, TaskQueue, build_task_queue


def make_task(**kw):
    defaults = dict(
        index=0, row=0, col=0, kblock=0, row_start=0, col_start=0, k_start=0,
        m=100, n=200, k=50, is_first_k=True, is_last_k=True,
    )
    defaults.update(kw)
    return GpuTask(**defaults)


class TestGpuTask:
    def test_operand_bytes(self):
        task = make_task()
        assert task.a_bytes == 100 * 50 * 8
        assert task.b_bytes == 50 * 200 * 8
        assert task.c_bytes == 100 * 200 * 8

    def test_input_bytes_respects_flags(self):
        task = make_task(send_a=False, send_b=True, send_c_in=True)
        assert task.input_bytes == task.b_bytes + task.c_bytes
        silent = make_task(send_a=False, send_b=False, send_c_in=False)
        assert silent.input_bytes == 0

    def test_output_only_after_last_k(self):
        assert make_task(is_last_k=True).output_bytes == 100 * 200 * 8
        assert make_task(is_last_k=False).output_bytes == 0

    def test_flops(self):
        assert make_task().flops == 2.0 * 100 * 200 * 50


class TestTaskQueueStats:
    def test_len_and_saved_fraction(self):
        queue = build_task_queue(16384, 16384, 1216, beta_nonzero=False)
        assert len(queue) == 4
        assert 0.0 < queue.bytes_saved_fraction < 1.0

    def test_saved_fraction_zero_for_empty(self):
        queue = TaskQueue(tasks=[], grid=(0, 0, 0))
        assert queue.bytes_saved_fraction == 0.0

    def test_resends_counted_under_memory_pressure(self):
        roomy = build_task_queue(16384, 16384, 16384, beta_nonzero=False)
        tight = build_task_queue(
            16384, 16384, 16384, beta_nonzero=False, gpu_memory_bytes=0.3e9
        )
        assert roomy.resends == 0
        assert tight.resends >= 0  # eviction may or may not trigger resends
        assert tight.input_bytes >= roomy.input_bytes
