"""Unit and property tests for task splitting and bounce-corner-turn ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.taskqueue import (
    bounce_corner_turn_order,
    build_task_queue,
    effective_block_limits,
    split_extents,
)
from repro.util.units import GB


class TestSplitExtents:
    def test_fits_in_one(self):
        assert split_extents(5000, 8192) == [(0, 5000)]

    def test_near_equal_blocks(self):
        blocks = split_extents(10000, 8192)
        assert blocks == [(0, 5000), (5000, 5000)]

    def test_remainder_spread(self):
        blocks = split_extents(10, 3)
        sizes = [s for _, s in blocks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert all(s <= 3 for s in sizes)

    def test_zero(self):
        assert split_extents(0, 8192) == []

    def test_contiguous(self):
        blocks = split_extents(1000, 77)
        pos = 0
        for start, size in blocks:
            assert start == pos
            pos += size
        assert pos == 1000

    @given(st.integers(0, 100000), st.integers(1, 9000))
    @settings(max_examples=60, deadline=None)
    def test_property_cover_exactly(self, total, limit):
        blocks = split_extents(total, limit)
        assert sum(s for _, s in blocks) == total
        assert all(1 <= s <= limit for _, s in blocks)


class TestBounceCornerTurn:
    def test_paper_2x2_example(self):
        """Fig 5: tasks run as T0, T1, T3, T2."""
        order = bounce_corner_turn_order(2, 2)
        labels = [i * 2 + j for i, j in order]
        assert labels == [0, 1, 3, 2]

    def test_adjacent_tasks_share_an_operand(self):
        order = bounce_corner_turn_order(4, 5)
        for (i0, j0), (i1, j1) in zip(order, order[1:]):
            assert i0 == i1 or j0 == j1  # same A row block or same B col block

    def test_covers_grid_once(self):
        order = bounce_corner_turn_order(3, 4)
        assert len(order) == 12
        assert len(set(order)) == 12

    def test_single_row(self):
        assert bounce_corner_turn_order(1, 3) == [(0, 0), (0, 1), (0, 2)]

    def test_empty(self):
        assert bounce_corner_turn_order(0, 5) == []


class TestEffectiveBlockLimits:
    def test_no_memory_constraint(self):
        assert effective_block_limits(50000, 50000, 50000, 8192, None, 512) == (8192, 8192, 8192)

    def test_paper_boundary_8192_square_fits_1gb(self):
        """An 8192-square task must fit the RV770's 1 GB (single task at 8192)."""
        limits = effective_block_limits(8192, 8192, 8192, 8192, 1.0 * GB, 512)
        assert limits == (8192, 8192, 8192)

    def test_large_call_shrinks(self):
        limits = effective_block_limits(16384, 16384, 16384, 8192, 1.0 * GB, 512)
        assert min(limits) < 8192

    def test_linpack_shape_keeps_full_blocks(self):
        """K = NB = 1216 panels: blocks stay at the texture limit."""
        limits = effective_block_limits(40000, 40000, 1216, 8192, 1.0 * GB, 512)
        assert limits[0] == 8192 and limits[1] == 8192


class TestBuildTaskQueue:
    def test_single_task_below_texture_limit(self):
        queue = build_task_queue(4096, 4096, 1216)
        assert len(queue) == 1
        task = queue.tasks[0]
        assert (task.m, task.n, task.k) == (4096, 4096, 1216)
        assert task.send_a and task.send_b and task.is_last_k

    def test_empty_queue(self):
        assert len(build_task_queue(0, 100, 100)) == 0

    def test_paper_2x2_with_reuse_skips_A_and_B1(self):
        """Section V.C: 'the entire matrix A and matrix B1 are skipped'."""
        queue = build_task_queue(16384, 16384, 1216, reuse=True, beta_nonzero=False)
        assert queue.grid == (2, 2, 1)
        t0, t1, t3, t2 = queue.tasks
        assert (t0.send_a, t0.send_b) == (True, True)  # T0 sends A1, B1
        assert (t1.send_a, t1.send_b) == (False, True)  # T1 reuses A1
        assert (t3.send_a, t3.send_b) == (True, False)  # T3 reuses B2
        assert (t2.send_a, t2.send_b) == (False, False)  # T2 reuses A2 and B1

    def test_no_reuse_sends_everything(self):
        queue = build_task_queue(16384, 16384, 1216, reuse=False, beta_nonzero=False)
        assert all(t.send_a and t.send_b for t in queue.tasks)
        assert queue.input_bytes == queue.naive_input_bytes
        assert queue.bytes_saved_fraction == 0.0

    def test_reuse_saves_bytes(self):
        naive = build_task_queue(16384, 16384, 1216, reuse=False, beta_nonzero=False)
        smart = build_task_queue(16384, 16384, 1216, reuse=True, beta_nonzero=False)
        assert smart.input_bytes < naive.input_bytes
        # 2x2 grid with full reuse: half the operand traffic is skipped.
        assert smart.bytes_saved_fraction == pytest.approx(0.5, abs=0.05)

    def test_beta_nonzero_stages_c_in(self):
        queue = build_task_queue(10000, 10000, 1216, beta_nonzero=True)
        c_in = sum(t.c_bytes for t in queue.tasks if t.send_c_in)
        assert c_in == 10000 * 10000 * 8

    def test_beta_zero_no_c_in(self):
        queue = build_task_queue(10000, 10000, 1216, beta_nonzero=False)
        assert not any(t.send_c_in for t in queue.tasks)

    def test_outputs_once_per_c_block(self):
        queue = build_task_queue(10000, 10000, 1216, beta_nonzero=False)
        assert queue.output_bytes == 10000 * 10000 * 8

    def test_k_split_outputs_only_after_last_chunk(self):
        queue = build_task_queue(4096, 4096, 16384, beta_nonzero=False)
        r, c, kp = queue.grid
        assert kp > 1
        for t in queue.tasks:
            if t.is_last_k:
                assert t.output_bytes == t.c_bytes
            else:
                assert t.output_bytes == 0
        assert queue.output_bytes == 4096 * 4096 * 8

    def test_k_split_covers_all_flops(self):
        queue = build_task_queue(9000, 9000, 9000, beta_nonzero=False)
        assert sum(t.flops for t in queue.tasks) == pytest.approx(2.0 * 9000**3)

    def test_memory_limit_causes_resends_or_smaller_blocks(self):
        unlimited = build_task_queue(16384, 16384, 16384, beta_nonzero=False)
        limited = build_task_queue(
            16384, 16384, 16384, beta_nonzero=False, gpu_memory_bytes=1.0 * GB
        )
        assert limited.input_bytes >= unlimited.input_bytes or len(limited) > len(unlimited)

    @given(
        st.integers(0, 30000), st.integers(1, 30000), st.integers(1, 20000),
        st.booleans(), st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_flops_and_blocks_conserved(self, m1, n, k, reuse, beta):
        queue = build_task_queue(m1, n, k, reuse=reuse, beta_nonzero=beta)
        assert sum(t.flops for t in queue.tasks) == pytest.approx(2.0 * m1 * n * k)
        if m1 > 0:
            assert queue.output_bytes == m1 * n * 8
        for t in queue.tasks:
            assert t.m <= 8192 and t.n <= 8192 and t.k <= 8192
