"""The DeviceSet view of a compute element, including GpuDropout faults."""

import math

import pytest

from repro.faults.spec import FaultSpec, GpuDropout
from repro.machine.presets import tianhe1_element
from repro.sched.devices import DeviceSet


@pytest.fixture
def element_devices():
    return DeviceSet.from_element(tianhe1_element(), name="tianhe1")


class TestFromElement:
    def test_one_device_per_compute_core_plus_gpu(self, element_devices):
        spec = tianhe1_element()
        assert len(element_devices.cpus) == len(spec.compute_core_indices)
        assert len(element_devices.gpus) == 1
        assert [d.index for d in element_devices.devices] == list(
            range(len(element_devices.devices))
        )

    def test_memory_domains(self, element_devices):
        assert all(d.memory_domain == "host" for d in element_devices.cpus)
        assert element_devices.gpus[0].memory_domain == "gpu0"

    def test_default_devices_never_die(self, element_devices):
        assert all(d.alive_until == math.inf for d in element_devices.devices)
        assert element_devices.alive(1e9) == element_devices.devices


class TestExecModel:
    def test_exec_time_monotone_in_flops(self, element_devices):
        for device in element_devices.devices:
            times = [device.exec_time(f) for f in (1e6, 1e8, 1e10, 1e12)]
            assert times == sorted(times)
            assert all(t > 0 for t in times)

    def test_small_tasks_favor_cpu_large_tasks_favor_gpu(self, element_devices):
        # The tension every scheduler negotiates: kernel-launch overhead and
        # the saturating efficiency curve make the GPU lose on tiny kernels.
        cpu, gpu = element_devices.cpus[0], element_devices.gpus[0]
        assert cpu.exec_time(1e5) < gpu.exec_time(1e5)
        assert gpu.exec_time(5e10) < cpu.exec_time(5e10)

    def test_gpu_rate_approaches_but_never_exceeds_eff_max(self, element_devices):
        gpu = element_devices.gpus[0]
        assert gpu.rate(1e13) < gpu.peak_flops * gpu.efficiency
        assert gpu.rate(1e13) > gpu.rate(1e9)

    def test_comm_free_within_a_domain(self, element_devices):
        assert element_devices.comm_time(1e9, "host", "host") == 0.0
        assert element_devices.comm_time(1e9, "gpu0", "gpu0") == 0.0

    def test_cross_domain_comm_pays_latency_plus_bandwidth(self, element_devices):
        small = element_devices.comm_time(8.0, "host", "gpu0")
        big = element_devices.comm_time(1e9, "host", "gpu0")
        assert small >= element_devices.transfer.latency
        assert big > small


class TestGpuDropoutFaults:
    def test_dropout_at_time_zero_removes_the_gpu(self):
        faults = FaultSpec(dropouts=(GpuDropout(at=0.0),))
        devices = DeviceSet.from_element(tianhe1_element(), faults=faults)
        assert devices.gpus == ()
        assert len(devices.cpus) >= 1

    def test_later_dropout_sets_alive_until(self):
        faults = FaultSpec(dropouts=(GpuDropout(at=2.5),))
        devices = DeviceSet.from_element(tianhe1_element(), faults=faults)
        (gpu,) = devices.gpus
        assert gpu.alive_until == 2.5
        assert gpu.alive_at(2.0) and not gpu.alive_at(2.5)
        assert gpu not in devices.alive(3.0)
        assert all(d.kind == "cpu" for d in devices.alive(3.0))

    def test_earliest_dropout_wins(self):
        faults = FaultSpec(dropouts=(GpuDropout(at=5.0), GpuDropout(at=1.0)))
        devices = DeviceSet.from_element(tianhe1_element(), faults=faults)
        assert devices.gpus[0].alive_until == 1.0
