"""The scheduler registry: names, aliases, resolution, ambient context."""

import pytest

from repro.hpl.driver import Configuration
from repro.sched import registry
from repro.sched.base import Scheduler

#: Every scheduler the zoo ships (ISSUE acceptance: >= 6 registered).
EXPECTED_NAMES = {
    "adaptive", "static", "qilin", "gpu_only", "cpu_only",
    "heft", "work_stealing", "hesp",
}


class TestRegistry:
    def test_zoo_is_registered(self):
        names = registry.names()
        assert EXPECTED_NAMES <= set(names)
        assert len(names) >= 6

    def test_every_entry_declares_a_capability(self):
        for name in registry.names():
            info = registry.get(name)
            assert info.description, name
            assert info.supports_hpl or info.supports_dag, name
            assert info.source in ("paper", "extension"), name

    def test_extensions_are_marked(self):
        for name in ("heft", "work_stealing", "hesp"):
            assert registry.get(name).source == "extension"
        for name in ("adaptive", "static", "qilin"):
            assert registry.get(name).source == "paper"

    def test_legacy_configuration_keys_are_aliases(self):
        aliases = registry.aliases()
        assert aliases["acmlg_both"] == "adaptive"
        assert aliases["acmlg"] == "gpu_only"
        assert aliases["acmlg_pipe"] == "gpu_only"
        assert aliases["cpu"] == "cpu_only"
        # Every legacy Configuration member resolves somewhere.
        for member in Configuration:
            assert registry.canonical_name(str(member)) in registry.names()

    def test_canonical_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            registry.canonical_name("not_a_scheduler")

    def test_create_returns_fresh_instances(self):
        a, b = registry.create("adaptive"), registry.create("adaptive")
        assert a is not b
        assert isinstance(a, Scheduler)
        assert a.name == "adaptive"

    def test_create_resolves_aliases_but_keeps_canonical_name(self):
        sch = registry.create("acmlg_both")
        assert sch.name == "adaptive"

    def test_describe_rows_carry_aliases(self):
        rows = {row["name"]: row for row in registry.describe()}
        assert "acmlg_both" in rows["adaptive"]["aliases"]
        assert rows["heft"]["dag"] and not rows["heft"]["hpl"]


class TestResolveName:
    def test_alias_spelling_is_preserved(self):
        # Golden traces and cache keys depend on this: legacy spellings
        # validate against the registry but pass through unchanged.
        assert registry.resolve_name("acmlg_both") == "acmlg_both"
        assert registry.resolve_name("adaptive") == "adaptive"
        assert registry.resolve_name(Configuration.CPU) == "cpu"

    def test_scheduler_instances_resolve_to_their_name(self):
        assert registry.resolve_name(registry.create("heft")) == "heft"

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            registry.resolve_name("bogus")


class TestAmbientContext:
    def test_default_is_the_papers_framework(self):
        assert registry.current() == registry.DEFAULT_SCHEDULER == "adaptive"

    def test_use_nests_and_restores(self):
        with registry.use("heft"):
            assert registry.current() == "heft"
            with registry.use("static"):
                assert registry.current() == "static"
            assert registry.current() == "heft"
        assert registry.current() == "adaptive"

    def test_use_none_is_a_noop(self):
        with registry.use(None):
            assert registry.current() == "adaptive"

    def test_use_validates_before_installing(self):
        with pytest.raises(ValueError):
            with registry.use("bogus"):
                pass  # pragma: no cover - use() must raise first
        assert registry.current() == "adaptive"

    def test_use_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with registry.use("qilin"):
                raise RuntimeError("boom")
        assert registry.current() == "adaptive"
