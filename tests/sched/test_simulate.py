"""The event-driven DAG executor and the scheduler zoo's behavior on it."""

import pytest

from repro.faults.spec import FaultSpec, GpuDropout
from repro.machine.presets import tianhe1_element
from repro.sched import registry
from repro.sched.base import Scheduler
from repro.sched.devices import DeviceSet
from repro.sched.simulate import execute
from repro.sched.workloads import mixed_stream, standard_workloads, tiled_cholesky

DAG_SCHEDULERS = [
    name for name in registry.names() if registry.get(name).supports_dag
]


@pytest.fixture
def devices():
    return DeviceSet.from_element(tianhe1_element(), name="tianhe1")


@pytest.fixture
def small_graph():
    return tiled_cholesky(3, 512)


class TestExecutorContract:
    @pytest.mark.parametrize("name", DAG_SCHEDULERS)
    def test_every_scheduler_completes_the_graph(self, name, devices, small_graph):
        result = execute(small_graph, devices, registry.create(name))
        assert result.scheduler == registry.canonical_name(name)
        assert len(result.records) == len(small_graph)
        assert {r.task_id for r in result.records} == {
            t.id for t in small_graph.tasks
        }
        assert result.makespan > 0

    @pytest.mark.parametrize("name", DAG_SCHEDULERS)
    def test_records_respect_dependencies(self, name, devices, small_graph):
        result = execute(small_graph, devices, registry.create(name))
        finish = {r.task_id: r.finish for r in result.records}
        start = {r.task_id: r.start for r in result.records}
        for task in small_graph.tasks:
            for dep in task.deps:
                assert finish[dep] <= start[task.id] + 1e-12

    @pytest.mark.parametrize("name", DAG_SCHEDULERS)
    def test_no_device_runs_two_tasks_at_once(self, name, devices, small_graph):
        result = execute(small_graph, devices, registry.create(name))
        per_device: dict = {}
        for r in sorted(result.records, key=lambda r: r.start):
            intervals = per_device.setdefault(r.device_index, [])
            if intervals:
                assert intervals[-1][1] <= r.start + 1e-12
            intervals.append((r.start, r.finish))

    @pytest.mark.parametrize("name", DAG_SCHEDULERS)
    def test_makespan_bounded_below_by_critical_path(self, name, devices, small_graph):
        # No schedule beats the critical path run entirely at the fastest
        # large-task rate in the set.
        result = execute(small_graph, devices, registry.create(name))
        best_rate = max(d.rate(1e12) for d in devices.devices)
        assert result.makespan >= small_graph.critical_path_flops / best_rate

    @pytest.mark.parametrize("name", DAG_SCHEDULERS)
    def test_two_fresh_runs_are_identical(self, name, devices, small_graph):
        a = execute(small_graph, devices, registry.create(name))
        b = execute(small_graph, devices, registry.create(name))
        assert a.records == b.records
        assert a.makespan == b.makespan

    def test_hpl_only_schedulers_are_rejected(self, devices, small_graph):
        class HplOnly(Scheduler):
            name = "hpl_only_stub"
            supports_hpl = True
            supports_dag = False

        with pytest.raises(ValueError, match="HPL-only"):
            execute(small_graph, devices, HplOnly())

    def test_illegal_assignments_raise(self, devices, small_graph):
        class Cheater(Scheduler):
            name = "cheater"
            supports_dag = True

            def next_assignment(self, state):
                return state.ready[0], 0  # device 0 regardless of busy state

        class DoubleBooker(Cheater):
            def next_assignment(self, state):
                # Hand out the same device while the executor thinks it free:
                # assign a task that is not ready.
                return state.graph.topo_order()[-1], 0

        with pytest.raises(ValueError, match="non-ready"):
            execute(small_graph, devices, DoubleBooker())


class TestPlacementPersonalities:
    def test_cpu_only_never_touches_the_gpu(self, devices, small_graph):
        result = execute(small_graph, devices, registry.create("cpu_only"))
        assert all(r.device_kind == "cpu" for r in result.records)
        assert result.gpu_task_fraction == 0.0

    def test_gpu_only_runs_everything_on_the_gpu(self, devices, small_graph):
        result = execute(small_graph, devices, registry.create("gpu_only"))
        assert all(r.device_kind == "gpu" for r in result.records)
        assert result.gpu_task_fraction == 1.0

    def test_adaptive_splits_stream_work_by_task_size(self, devices):
        # The mixed stream is built so neither pure placement wins: big GEMMs
        # belong on the GPU, launch-overhead-dominated small kernels on CPUs.
        graph = mixed_stream(chains=6, depth=6)
        adaptive = execute(graph, devices, registry.create("adaptive"))
        cpu_only = execute(graph, devices, registry.create("cpu_only"))
        gpu_only = execute(graph, devices, registry.create("gpu_only"))
        assert adaptive.makespan < cpu_only.makespan
        assert adaptive.makespan < gpu_only.makespan
        assert 0.0 < adaptive.gpu_task_fraction < 1.0

    def test_work_stealing_uses_the_whole_machine(self, devices):
        graph = mixed_stream(chains=6, depth=6)
        result = execute(graph, devices, registry.create("work_stealing"))
        used = {r.device_index for r in result.records}
        assert len(used) == len(devices.devices)

    def test_qilin_freezes_per_kind_placement(self, devices):
        graph = mixed_stream(chains=6, depth=6)
        scheduler = registry.create("qilin")
        execute(graph, devices, scheduler)
        # After training every recurring kind has a frozen preference.
        assert "gemm" in scheduler._frozen

    def test_hesp_chooses_a_variant_per_workload(self, devices):
        workload = standard_workloads(quick=True)["cholesky"]
        scheduler = registry.create("hesp")
        graph = scheduler.choose_variant(workload, devices)
        assert graph is not None
        assert graph.name in {v.name for v in workload.variants(devices)}
        assert scheduler.chosen["cholesky"] == graph.name

    def test_heft_ranks_entry_tasks_above_exits(self, devices, small_graph):
        scheduler = registry.create("heft")
        scheduler.prepare(small_graph, devices)
        order = small_graph.topo_order()
        assert scheduler._rank[order[0]] > scheduler._rank[order[-1]]


class TestGpuDeathMidRun:
    def _faulted_devices(self, at: float) -> DeviceSet:
        return DeviceSet.from_element(
            tianhe1_element(), faults=FaultSpec(dropouts=(GpuDropout(at=at),))
        )

    @pytest.mark.parametrize("name", DAG_SCHEDULERS)
    def test_death_requeues_and_the_graph_still_finishes(self, name, devices):
        graph = tiled_cholesky(3, 512)
        clean = execute(graph, devices, registry.create(name))
        # Kill the GPU mid-run: halfway through the clean makespan.
        death = clean.makespan / 2
        faulted = execute(
            graph, self._faulted_devices(death), registry.create(name)
        )
        assert len(faulted.records) == len(graph)
        # No completed GPU work after the death; lost work re-ran on CPUs.
        for r in faulted.records:
            if r.device_kind == "gpu":
                assert r.finish <= death + 1e-12

    def test_gpu_only_degrades_to_cpus_instead_of_stalling(self):
        graph = tiled_cholesky(3, 512)
        result = execute(
            graph, self._faulted_devices(1e-5), registry.create("gpu_only")
        )
        assert len(result.records) == len(graph)
        assert any(r.device_kind == "cpu" for r in result.records)
