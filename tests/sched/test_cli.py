"""CLI surfaces of the scheduler API: sched list, --scheduler flags."""

import json

import pytest

from repro.sched import cli as sched_cli
from repro.verify import differential


class TestSchedList:
    def test_list_shows_the_whole_zoo(self, capsys):
        assert sched_cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("adaptive", "static", "qilin", "heft", "work_stealing", "hesp"):
            assert name in out
        assert "aliases: acmlg_adaptive, acmlg_both" in out

    def test_list_json_is_machine_readable(self, capsys):
        assert sched_cli.main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) >= 6  # the ISSUE acceptance floor
        assert {"name", "description", "source", "hpl", "dag", "aliases"} <= set(
            rows[0]
        )


class TestBenchSchedulerFlag:
    def test_unknown_scheduler_fails_fast(self, capsys):
        from repro.bench import cli as bench_cli

        assert bench_cli.main(["fig9", "--scheduler", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_scheduler_flag_is_fig9_only(self, capsys):
        from repro.bench import cli as bench_cli

        assert bench_cli.main(["fig8", "--scheduler", "adaptive"]) == 2
        assert "only apply to fig9" in capsys.readouterr().err

    def test_deprecated_configurations_spelling_warns(self, capsys):
        from repro.bench import cli as bench_cli

        assert bench_cli.main(["fig8", "--configurations", "acmlg_both"]) == 2
        assert "--configurations is deprecated" in capsys.readouterr().err


class TestCrossvalSchedulerExpansion:
    def test_cases_are_renamed_per_scheduler(self):
        base = (differential.DifferentialCase(name="e5540/clean", n=8000),)
        cases = differential.cases_for_schedulers(["static", "qilin"], base=base)
        assert [c.name for c in cases] == ["static/e5540/clean", "qilin/e5540/clean"]
        assert [c.scheduler for c in cases] == ["static", "qilin"]

    def test_default_base_is_the_full_matrix(self):
        cases = differential.cases_for_schedulers(["adaptive"])
        assert len(cases) == len(differential.MATRIX)

    def test_dag_only_schedulers_are_rejected(self):
        with pytest.raises(ValueError):
            differential.cases_for_schedulers(["heft"])

    def test_crossval_cli_rejects_unknown_scheduler(self, capsys):
        from repro.verify import cli as verify_cli

        assert verify_cli.main(["crossval", "--scheduler", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err
