"""Registry-aware persistence: every scheduler round-trips with its name."""

import json

import numpy as np
import pytest

from repro.sched import persistence, registry
from repro.sched.adaptive import AdaptiveMapper
from repro.sched.qilin import QilinMapper
from repro.sched.static_map import StaticMapper

#: Sample learned state per scheduler, fed through load_state before saving
#: so the round trip carries real payloads, not just empty dicts.
SAMPLE_STATE = {
    "adaptive": {"correction": {"gpu": 1.15, "cpu": 0.98}},
    "qilin": {"frozen": {"gemm": "gpu", "norm": "cpu"}},
    "hesp": {"chosen": {"cholesky": "cholesky[4x4,b=2048]"}},
}


class TestSchedulerRoundTrip:
    @pytest.mark.parametrize("name", registry.names())
    def test_every_registered_scheduler_round_trips(self, name, tmp_path):
        scheduler = registry.create(name)
        scheduler.load_state(SAMPLE_STATE.get(name, {}))
        path = persistence.save_mapper(scheduler, tmp_path / f"{name}.json")

        loaded_name, loaded = persistence.load_named(path)
        assert loaded_name == name
        assert type(loaded) is type(scheduler)
        assert loaded.state_dict() == scheduler.state_dict()

    def test_payload_carries_name_and_kind(self, tmp_path):
        scheduler = registry.create("heft")
        payload = persistence.mapper_state(scheduler)
        assert payload["version"] == persistence.FORMAT_VERSION
        assert payload["scheduler"] == "heft"
        assert payload["kind"] == "scheduler"

    def test_save_is_valid_json(self, tmp_path):
        path = persistence.save_mapper(
            registry.create("work_stealing"), tmp_path / "ws.json"
        )
        payload = json.loads(path.read_text())
        assert payload["scheduler"] == "work_stealing"


def _warmed_adaptive(cls=AdaptiveMapper):
    mapper = cls(0.889, 3, max_workload=1e13, n_bins=16)
    mapper.database_g.store(2.0e12, 0.72)
    mapper.database_g.store(7.5e12, 0.81)
    mapper.database_c.store([0.5, 0.3, 0.2])
    mapper.updates = 2
    return mapper


class TestHplMapperRoundTrip:
    def test_adaptive_mapper_databases_survive(self, tmp_path):
        mapper = _warmed_adaptive()
        path = persistence.save_mapper(mapper, tmp_path / "adaptive.json")
        name, restored = persistence.load_named(path)
        assert name == "adaptive"
        assert isinstance(restored, AdaptiveMapper)
        np.testing.assert_allclose(
            restored.database_g.values(), mapper.database_g.values()
        )
        np.testing.assert_array_equal(
            restored.database_g.written_mask(), mapper.database_g.written_mask()
        )
        np.testing.assert_allclose(
            restored.database_c.lookup(), mapper.database_c.lookup()
        )
        assert restored.updates == 2

    def test_qilin_mapper_keeps_training_and_freeze(self, tmp_path):
        mapper = _warmed_adaptive(QilinMapper)
        mapper.training_seconds = 12.5
        mapper.training_observations = 4
        mapper.freeze()
        path = persistence.save_mapper(mapper, tmp_path / "qilin.json")
        name, restored = persistence.load_named(path)
        assert name == "qilin"
        assert isinstance(restored, QilinMapper)
        assert restored.frozen
        assert restored.training_seconds == 12.5
        assert restored.training_observations == 4

    @pytest.mark.parametrize("name,gsplit", [
        ("static", 0.889), ("gpu_only", 1.0), ("cpu_only", 0.0),
    ])
    def test_static_mappers_need_a_pinned_name(self, name, gsplit, tmp_path):
        # One StaticMapper class backs three registry entries; the explicit
        # name parameter disambiguates them in the payload.
        mapper = StaticMapper(gsplit, 3)
        path = persistence.save_mapper(mapper, tmp_path / f"{name}.json", name=name)
        loaded_name, restored = persistence.load_named(path)
        assert loaded_name == name
        assert isinstance(restored, StaticMapper)
        assert restored.gsplit(1e12) == pytest.approx(gsplit)

    def test_restore_is_not_an_observed_update(self, tmp_path):
        mapper = _warmed_adaptive()
        path = persistence.save_mapper(mapper, tmp_path / "m.json")
        _, restored = persistence.load_named(path)
        assert restored.database_g.history == []
        assert restored.database_c.history == []


class TestLegacyFormat:
    def test_format_1_payloads_load_as_adaptive(self):
        body = persistence.mapper_state(_warmed_adaptive())["state"]
        legacy = {**body, "version": persistence.LEGACY_FORMAT_VERSION}
        name, restored = persistence.restore_named(legacy)
        assert name == "adaptive"
        assert isinstance(restored, AdaptiveMapper)
        assert restored.updates == 2

    def test_unknown_version_is_rejected(self):
        with pytest.raises(ValueError, match="version"):
            persistence.restore_named({"version": 99})

    def test_unpersistable_objects_are_rejected(self):
        with pytest.raises(TypeError, match="cannot persist"):
            persistence.mapper_state(object())
