"""Property suite for the scheduler zoo (hypothesis).

The invariants the ISSUE pins: split fractions stay in [0, 1] and CSplits
partition to 1 under any consistent observation stream, texture-limit
splits tile the matrix exactly, and no scheduler ever completes work on a
GPU after a ``GpuDropout`` killed it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.spec import FaultSpec, GpuDropout
from repro.machine.presets import tianhe1_element
from repro.sched import registry
from repro.sched.adaptive import AdaptiveMapper
from repro.sched.devices import DeviceSet
from repro.sched.simulate import execute
from repro.sched.taskqueue import split_extents
from repro.sched.workloads import tiled_cholesky
from tests.strategies import observation_sequences, workloads

DAG_SCHEDULERS = [
    name for name in registry.names() if registry.get(name).supports_dag
]


class TestSplitInvariants:
    @given(observation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_gsplit_stays_a_fraction_under_any_stream(self, observations):
        mapper = AdaptiveMapper(0.889, 3, max_workload=1.7e13, n_bins=16)
        for obs in observations:
            mapper.observe(obs)
            values = mapper.database_g.values()
            assert (values >= 0.0).all() and (values <= 1.0).all()
            # Written bins respect the starvation guard too.
            written = mapper.database_g.written_mask()
            assert (values[written] >= mapper.min_gsplit).all()

    @given(observation_sequences(), workloads)
    @settings(max_examples=40, deadline=None)
    def test_lookup_is_always_a_valid_fraction(self, observations, workload):
        mapper = AdaptiveMapper(0.889, 3, max_workload=1.7e13, n_bins=16)
        for obs in observations:
            mapper.observe(obs)
        assert 0.0 <= mapper.gsplit(min(workload, mapper.database_g.max_workload)) <= 1.0

    @given(observation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_csplits_always_partition_to_one(self, observations):
        mapper = AdaptiveMapper(0.889, 3, max_workload=1.7e13, n_bins=16)
        for obs in observations:
            mapper.observe(obs)
            csplits = mapper.csplits()
            assert (csplits >= 0.0).all()
            assert abs(csplits.sum() - 1.0) < 1e-6


class TestTextureLimitSplits:
    @given(st.integers(1, 50_000), st.integers(1, 8192))
    @settings(max_examples=60, deadline=None)
    def test_extents_tile_the_axis_exactly(self, total, limit):
        extents = split_extents(total, limit)
        assert extents[0][0] == 0
        covered = 0
        for start, length in extents:
            assert start == covered  # contiguous, in order
            assert 1 <= length <= limit
            covered += length
        assert covered == total

    @given(st.integers(1, 8192))
    @settings(max_examples=20, deadline=None)
    def test_within_limit_needs_no_split(self, total):
        assert split_extents(total, 8192) == [(0, total)]


class TestNoWorkOnDroppedGpus:
    @given(
        st.sampled_from(DAG_SCHEDULERS),
        st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_gpu_record_survives_past_the_dropout(self, name, death_time):
        devices = DeviceSet.from_element(
            tianhe1_element(),
            faults=FaultSpec(dropouts=(GpuDropout(at=death_time),)),
        )
        graph = tiled_cholesky(3, 512)
        result = execute(graph, devices, registry.create(name))
        # The graph always completes, and nothing finishes on a dead GPU.
        assert len(result.records) == len(graph)
        for record in result.records:
            if record.device_kind == "gpu":
                assert record.finish <= death_time + 1e-12
