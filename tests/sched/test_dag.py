"""Task graphs and the workload generators behind the tournament."""

import pytest

from repro.sched.dag import DagTask, TaskGraph
from repro.sched.workloads import (
    mixed_stream,
    standard_workloads,
    tiled_cholesky,
    tiled_lu,
)


def chain(n: int = 4, flops: float = 1e9) -> TaskGraph:
    tasks = tuple(
        DagTask(id=f"t{i}", kind="gemm", flops=flops, out_bytes=8.0,
                deps=(f"t{i-1}",) if i else ())
        for i in range(n)
    )
    return TaskGraph(name="chain", tasks=tasks)


class TestTaskGraphValidation:
    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError, match="flops"):
            DagTask(id="x", kind="gemm", flops=-1.0, out_bytes=0.0)

    def test_duplicate_ids_rejected(self):
        t = DagTask(id="a", kind="gemm", flops=1.0, out_bytes=0.0)
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph(name="dup", tasks=(t, t))

    def test_unknown_dependency_rejected(self):
        t = DagTask(id="a", kind="gemm", flops=1.0, out_bytes=0.0, deps=("ghost",))
        with pytest.raises(ValueError, match="unknown"):
            TaskGraph(name="bad", tasks=(t,))

    def test_cycle_rejected(self):
        a = DagTask(id="a", kind="gemm", flops=1.0, out_bytes=0.0, deps=("b",))
        b = DagTask(id="b", kind="gemm", flops=1.0, out_bytes=0.0, deps=("a",))
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(name="loop", tasks=(a, b))


class TestTaskGraphQueries:
    def test_topo_order_respects_dependencies(self):
        graph = tiled_cholesky(4, 256)
        seen = set()
        for tid in graph.topo_order():
            assert all(dep in seen for dep in graph.predecessors(tid))
            seen.add(tid)
        assert len(seen) == len(graph)

    def test_successors_invert_predecessors(self):
        graph = tiled_lu(3, 256)
        for task in graph.tasks:
            for dep in task.deps:
                assert task.id in graph.successors(dep)

    def test_critical_path_of_a_chain_is_its_total(self):
        graph = chain(5, flops=2e9)
        assert graph.critical_path_flops == pytest.approx(graph.total_flops)
        assert graph.total_flops == pytest.approx(5 * 2e9)

    def test_critical_path_of_a_diamond_is_the_longest_arm(self):
        tasks = (
            DagTask(id="src", kind="gemm", flops=1e9, out_bytes=8.0),
            DagTask(id="fast", kind="gemm", flops=1e9, out_bytes=8.0, deps=("src",)),
            DagTask(id="slow", kind="gemm", flops=5e9, out_bytes=8.0, deps=("src",)),
            DagTask(id="sink", kind="gemm", flops=1e9, out_bytes=8.0,
                    deps=("fast", "slow")),
        )
        graph = TaskGraph(name="diamond", tasks=tasks)
        assert graph.critical_path_flops == pytest.approx(1e9 + 5e9 + 1e9)


class TestWorkloadGenerators:
    def test_cholesky_task_count(self):
        # Per elimination step k on T tiles: 1 potrf + (T-k-1) trsm +
        # (T-k-1) syrk + C(T-k-1, 2) gemm.
        T = 5
        graph = tiled_cholesky(T, 128)
        expected = sum(
            1 + 2 * (T - k - 1) + (T - k - 1) * (T - k - 2) // 2 for k in range(T)
        )
        assert len(graph) == expected

    def test_lu_task_count(self):
        T = 4
        graph = tiled_lu(T, 128)
        expected = sum(1 + 2 * (T - k - 1) + (T - k - 1) ** 2 for k in range(T))
        assert len(graph) == expected

    def test_stream_mixes_kernel_kinds(self):
        graph = mixed_stream(chains=4, depth=6)
        kinds = {t.kind for t in graph.tasks}
        assert {"gemm", "conv", "norm", "reduce"} <= kinds
        assert len(graph) == 4 * 6 + 1

    def test_generators_are_deterministic(self):
        a, b = tiled_cholesky(4, 512), tiled_cholesky(4, 512)
        assert a.name == b.name
        assert [t.id for t in a.tasks] == [t.id for t in b.tasks]
        assert [t.flops for t in a.tasks] == [t.flops for t in b.tasks]

    def test_standard_workloads_expose_variants(self):
        catalogue = standard_workloads(quick=True)
        assert set(catalogue) == {"cholesky", "lu", "stream"}
        for name, workload in catalogue.items():
            variants = workload.variants()
            assert len(variants) >= 1
            # Default graph first; every variant computes the same workload.
            assert variants[0].name == workload.graph().name
            assert all(v.meta["workload"] == name for v in variants)

    def test_variants_change_granularity_not_problem(self):
        cholesky = standard_workloads(quick=True)["cholesky"]
        variants = cholesky.variants()
        tiles = {(v.meta["n_tiles"], v.meta["tile"]) for v in variants}
        assert len(tiles) == len(variants)  # each variant a distinct tiling
        sizes = {v.meta["n_tiles"] * v.meta["tile"] for v in variants}
        assert len(sizes) == 1  # ...of the same matrix
