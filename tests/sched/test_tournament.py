"""The scheduler tournament: the two regression pins and determinism.

The ISSUE pins two results as acceptance gates, asserted here directly:

* the adaptive framework beats the static peak split on throttle recovery
  (the paper's central claim, raced head-to-head), and
* HEFT wins at least one DAG workload cell (the PAPERS.md extension earns
  its keep on dependency-heavy graphs).
"""

import pytest

from repro import exec as exec_policy
from repro.exec import ExecutionPolicy
from repro.exec.cache import canonical_json
from repro.sched import registry, tournament


@pytest.fixture(scope="module")
def quick_report():
    """One full quick tournament shared by the assertion tests."""
    return tournament.run_tournament(quick=True)


class TestPins:
    def test_adaptive_beats_static_on_throttle_recovery(self, quick_report):
        pins = quick_report["pins"]
        assert pins["adaptive_beats_static_throttle"] is True
        recovery = {
            c["scheduler"]: c["recovery"] for c in quick_report["hpl_cells"]
        }
        assert recovery["adaptive"] > recovery["static"]

    def test_heft_wins_at_least_one_dag_cell(self, quick_report):
        pins = quick_report["pins"]
        assert pins["heft_wins_dag_cell"] is True
        assert len(pins["heft_winning_cells"]) >= 1

    def test_adaptive_losses_are_reported_honestly(self, quick_report):
        # The leaderboard must not hide where the paper's scheduler loses:
        # every rank-!= 1 adaptive cell appears in the losses list.
        losses = {l["cell"] for l in quick_report["pins"]["adaptive_dag_losses"]}
        expected = {
            f"{c['machine']}/{c['workload']}"
            for c in quick_report["dag_cells"]
            if c["scheduler"] == "adaptive" and c["rank"] != 1
        }
        assert losses == expected


class TestReportShape:
    def test_grid_is_complete(self, quick_report):
        n_sched = len(tournament.dag_schedulers())
        n_cells = n_sched * len(quick_report["machines"]) * len(
            quick_report["workloads"]
        )
        assert len(quick_report["dag_cells"]) == n_cells

    def test_leaderboard_covers_the_zoo(self, quick_report):
        board = quick_report["leaderboard"]
        assert len(board) >= 6
        assert [row["rank"] for row in board] == list(range(1, len(board) + 1))
        wins = [row["wins"] for row in board]
        assert wins == sorted(wins, reverse=True)

    def test_win_rate_matches_the_board(self, quick_report):
        total = len(
            {(c["machine"], c["workload"]) for c in quick_report["dag_cells"]}
        ) + 1  # + the throttle cell
        adaptive = next(
            row for row in quick_report["leaderboard"]
            if row["scheduler"] == "adaptive"
        )
        assert quick_report["adaptive_win_rate"] == pytest.approx(
            adaptive["wins"] / total
        )
        assert 0.0 < quick_report["adaptive_win_rate"] <= 1.0

    def test_ranked_cells_annotate_winner_and_gap(self, quick_report):
        for cell in quick_report["dag_cells"]:
            assert cell["rel_makespan"] >= 1.0
            assert (cell["rank"] == 1) == (cell["rel_makespan"] == 1.0) or (
                cell["rel_makespan"] == pytest.approx(1.0)
            )

    def test_render_tells_the_whole_story(self, quick_report):
        text = tournament.render_leaderboard(quick_report)
        assert "pins:" in text
        assert "HEFT wins a DAG cell: True" in text
        for row in quick_report["leaderboard"]:
            assert row["scheduler"] in text


class TestDeterminism:
    def test_leaderboard_is_byte_identical_across_cached_runs(self, tmp_path):
        kwargs = dict(
            quick=True,
            schedulers=("adaptive", "static", "heft"),
            machines=("tianhe1",),
            workloads=("stream",),
        )
        first = ExecutionPolicy(jobs=1, cache=True, cache_dir=tmp_path)
        with exec_policy.use(first):
            r1 = tournament.run_tournament(**kwargs)
        second = ExecutionPolicy(jobs=1, cache=True, cache_dir=tmp_path)
        with exec_policy.use(second):
            r2 = tournament.run_tournament(**kwargs)
        assert canonical_json(r1) == canonical_json(r2)
        # The second run must have been served from the cache, not recomputed.
        assert second.stats.cache_hits > 0
        assert second.stats.cache_misses == 0


class TestRankingUnits:
    CELLS = [
        {"scheduler": "a", "machine": "m", "workload": "w", "makespan_s": 2.0},
        {"scheduler": "b", "machine": "m", "workload": "w", "makespan_s": 1.0},
        {"scheduler": "c", "machine": "m", "workload": "w", "makespan_s": 4.0},
    ]

    def test_rank_dag_cells_orders_by_makespan(self):
        ranked = tournament._rank_dag_cells(self.CELLS)
        by_sched = {c["scheduler"]: c for c in ranked}
        assert by_sched["b"]["rank"] == 1 and by_sched["b"]["winner"] == "b"
        assert by_sched["a"]["rel_makespan"] == pytest.approx(2.0)
        assert by_sched["c"]["rel_makespan"] == pytest.approx(4.0)

    def test_ties_break_by_scheduler_name(self):
        tied = [dict(c, makespan_s=1.0) for c in self.CELLS]
        ranked = tournament._rank_dag_cells(tied)
        assert [c["scheduler"] for c in ranked] == ["a", "b", "c"]

    def test_leaderboard_sums_dag_and_hpl_wins(self):
        dag = tournament._rank_dag_cells(self.CELLS)
        hpl = [
            {"scheduler": "a", "recovery": 0.9},
            {"scheduler": "b", "recovery": 0.4},
        ]
        board = tournament._leaderboard(dag, hpl)
        top = board[0]
        assert top["scheduler"] == "b"  # 1 dag win beats a's 1 hpl win on rel
        a_row = next(r for r in board if r["scheduler"] == "a")
        assert a_row["hpl_wins"] == 1 and a_row["dag_wins"] == 0

    def test_schedulers_capability_filters(self):
        assert "heft" in tournament.dag_schedulers()
        assert "heft" not in tournament.hpl_schedulers()
        assert "adaptive" in tournament.hpl_schedulers()
        for name in tournament.dag_schedulers():
            assert registry.get(name).supports_dag
