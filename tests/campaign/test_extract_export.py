"""Metric extractors and the JSONL/CSV/HTML exporters."""

from __future__ import annotations

import json

import pytest

from repro.campaign.export import read_jsonl, to_csv, to_html, to_jsonl, write_artifacts
from repro.campaign.extract import (
    MetricExtractor,
    extract_metrics,
    extractor_names,
    metric_extractor,
    register_extractor,
)
from repro.campaign.model import Campaign, CampaignCell, machine_preset
from repro.campaign.runner import CampaignResult, CellOutcome, normalize_record


def fake_record(gflops: float = 75.0, elapsed: float = 4.5) -> dict:
    return normalize_record(
        {
            "v": 1, "hash": "f" * 16, "scheduler": "adaptive", "n": 8000,
            "seed": 1, "gflops": gflops, "elapsed": elapsed, "degraded": None,
            "wall": 123.0, "tenant": "x",  # volatile fields normalize away
        }
    )


def fake_result(n_cells: int = 2) -> CampaignResult:
    campaign = Campaign(name="fake", sizes=tuple(8000 + 1000 * i for i in range(n_cells)))
    outcomes = []
    for i, cell in enumerate(campaign.expand()):
        outcomes.append(
            CellOutcome(
                cell=cell,
                record=fake_record(gflops=70.0 + i),
                provenance={
                    "key": f"{i:016x}", "code_version": "deadbeef",
                    "cell_id": cell.cell_id,
                    "cache": "hit" if i % 2 else "miss", "journal": None,
                },
            )
        )
    return CampaignResult(campaign=campaign, outcomes=outcomes)


class TestExtractors:
    def test_registry_names(self):
        assert "hpl" in extractor_names() and "raw" in extractor_names()
        with pytest.raises(ValueError, match="valid:"):
            metric_extractor("perf")

    def test_hpl_extractor_metrics(self):
        cell = fake_result().cells[0]
        metrics = extract_metrics("hpl", cell, fake_record(gflops=75.0, elapsed=4.5))
        assert metrics["gflops"] == 75.0
        assert metrics["tflops"] == pytest.approx(0.075)
        assert metrics["time"] == 4.5
        peak = machine_preset("element").peak_gflops((1, 1))
        assert metrics["efficiency"] == pytest.approx(75.0 / peak)
        assert 0 < metrics["efficiency"] < 1
        assert metrics["machine"] == "element"
        assert set(metrics) == set(metric_extractor("hpl").METRICS)

    def test_missing_record_extracts_empty(self):
        cell = fake_result().cells[0]
        assert extract_metrics("hpl", cell, None) == {}

    def test_custom_extractor_registration(self):
        @register_extractor
        class _Doubler(MetricExtractor):
            name = "test-doubler"
            METRICS = {"double_gflops": "GFlop/s"}

            def extract(self, cell, record):
                return {"double_gflops": 2 * record["gflops"]}

        try:
            cell = fake_result().cells[0]
            out = extract_metrics("test-doubler", cell, fake_record(gflops=10.0))
            assert out == {"double_gflops": 20.0}
            # A campaign can name it declaratively now.
            Campaign(name="custom", sizes=(8000,), extractor="test-doubler")
        finally:
            from repro.campaign import extract as extract_mod

            extract_mod._EXTRACTORS.pop("test-doubler", None)

    def test_normalize_record_strips_volatile_fields(self):
        record = fake_record()
        assert "wall" not in record and "tenant" not in record
        assert record["gflops"] == 75.0


class TestExporters:
    def test_jsonl_round_trips(self):
        result = fake_result(3)
        rows = result.rows()
        assert read_jsonl(to_jsonl(result)) == json.loads(json.dumps(rows))

    def test_jsonl_is_line_per_cell_and_deterministic(self):
        result = fake_result(3)
        text = to_jsonl(result)
        assert text.count("\n") == 3
        assert text == to_jsonl(result)

    def test_csv_header_and_rows(self):
        result = fake_result(2)
        lines = to_csv(result).strip().splitlines()
        assert len(lines) == 3
        header = lines[0].split(",")
        for column in ("cell_id", "machine", "scheduler", "n", "gflops", "cache", "key"):
            assert column in header
        first = dict(zip(header, lines[1].split(",")))
        assert first["cache"] == "miss" and first["gflops"] == "70.0"

    def test_html_report_contains_provenance(self):
        result = fake_result(2)
        html_text = to_html(result)
        assert "<!doctype html>" in html_text
        for outcome in result.outcomes:
            assert outcome.cell.cell_id in html_text
            assert outcome.provenance["key"] in html_text
        assert "deadbeef" in html_text  # code version
        assert ">hit</td>" in html_text and ">miss</td>" in html_text
        import html as html_mod

        spec = json.dumps(result.campaign.to_dict(), indent=2)
        assert html_mod.escape(spec)[:40] in html_text

    def test_write_artifacts(self, tmp_path):
        result = fake_result(2)
        paths = write_artifacts(result, tmp_path / "out")
        assert set(paths) == {"jsonl", "csv", "html", "spec"}
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0
        spec = json.loads(paths["spec"].read_text())
        assert Campaign.from_dict(spec) == result.campaign
        assert read_jsonl(paths["jsonl"]) == json.loads(json.dumps(result.rows()))
