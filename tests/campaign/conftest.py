"""Fixtures for the campaign + what-if service end-to-end kit.

The central fixture is ``whatif_server``: a live :class:`WhatIfService`
bound to an ephemeral port, its asyncio event loop running in a daemon
thread, its worker pool in serial mode (everything in-process — fast and
deterministic), its result cache in a per-test temp directory.  Tests
talk to it over real HTTP via :func:`post_query` / :func:`get_json`, so
the wire path — parsing, headers, keep-alive, status codes — is what's
under test, not a shortcut around it.

Telemetry: ``campaign_telemetry`` installs an ambient
:class:`repro.obs.Telemetry` and a fresh :class:`ExecutionPolicy` *before*
the server starts.  The ambient stacks are module-level (visible across
threads), so counters incremented on the server's loop thread —
``session.submitted``, ``exec.cache.*``, ``whatif.*`` — are exactly what
the test thread asserts on.  That is the mechanism behind the kit's two
core assertions: a warm query schedules **zero pool tasks**, and N
identical concurrent cold queries schedule **one**.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Optional

import pytest

from repro import obs
from repro.campaign.service import WhatIfService
from repro.exec import policy as exec_policy


class ServerFixture:
    """A running service + the loop handle tests use to reach it."""

    def __init__(self, service: WhatIfService, loop: asyncio.AbstractEventLoop):
        self.service = service
        self.loop = loop

    @property
    def port(self) -> int:
        return self.service.port

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        tenant: str = "test",
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP round-trip; returns (status, lowercased headers, body)."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"X-Tenant": tenant}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {name.lower(): value for name, value in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    def post_query(self, query: dict, *, tenant: str = "test"):
        return self.request("POST", "/query", query, tenant=tenant)

    def get_json(self, path: str) -> Any:
        status, _, body = self.request("GET", path)
        assert status == 200, f"GET {path} -> {status}: {body.decode()!r}"
        return json.loads(body)


@pytest.fixture
def campaign_telemetry():
    """Ambient telemetry + a fresh exec policy, shared with the loop thread."""
    telemetry = obs.Telemetry()
    policy = exec_policy.ExecutionPolicy(jobs=1)
    with obs.use(telemetry), exec_policy.use(policy):
        yield telemetry


@pytest.fixture
def make_whatif_server(tmp_path, campaign_telemetry):
    """Factory fixture: start a serial in-process server with chosen knobs."""
    started: list[tuple[ServerFixture, threading.Thread]] = []

    def start(**kwargs: Any) -> ServerFixture:
        kwargs.setdefault("serial", True)
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        service = WhatIfService(**kwargs)
        ready = threading.Event()
        loop_holder: dict[str, asyncio.AbstractEventLoop] = {}

        async def _run() -> None:
            await service.start()
            loop_holder["loop"] = asyncio.get_running_loop()
            ready.set()
            try:
                await service.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await service.stop()

        thread = threading.Thread(target=lambda: asyncio.run(_run()), daemon=True)
        thread.start()
        assert ready.wait(timeout=30), "what-if server never came up"
        fixture = ServerFixture(service, loop_holder["loop"])
        started.append((fixture, thread))
        return fixture

    yield start

    for fixture, thread in started:
        for task in asyncio.all_tasks(fixture.loop):
            fixture.loop.call_soon_threadsafe(task.cancel)
        thread.join(timeout=30)
        assert not thread.is_alive(), "server thread failed to shut down"


@pytest.fixture
def whatif_server(make_whatif_server):
    """The default server: serial pool, per-test cache, no rate limit."""
    return make_whatif_server()
