"""Cache-key identity: machine presets must never alias a cache entry.

The regression this pins: ``Scenario.content_hash()`` used to fold the
cluster in as ``repr(self.cluster)`` — the default object repr, i.e. a
memory address.  Two consequences, both fatal for a content-addressed
cache:

* the hash changed between processes (same scenario, different address),
  so resume and cross-run caching silently missed; and
* it carried no spec information beyond the address, so two *different*
  machine presets with otherwise-equal scenario fields could collide.

Now the cluster contributes ``Cluster.content_key()`` (name, spec digest,
seed) and campaign cache keys additionally embed
:meth:`MachinePreset.identity`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.campaign.model import Campaign, CampaignCell, machine_preset
from repro.machine.cluster import Cluster, spec_digest
from repro.machine.presets import frontier_cluster, tianhe1_cluster
from repro.session import Scenario


def cell_for(machine: str, **kw) -> CampaignCell:
    defaults = dict(
        campaign="keys", machine=machine, scheduler="adaptive", n=8000,
        grid=(2, 2), bcast=None, fault="none", rep=0, seed=1234,
    )
    defaults.update(kw)
    return CampaignCell(**defaults)


class TestClusterContentKey:
    def test_repr_is_stable_and_address_free(self):
        spec = tianhe1_cluster(cabinets=1)
        a, b = Cluster(spec, seed=2009), Cluster(spec, seed=2009)
        assert repr(a) == repr(b)
        assert "0x" not in repr(a)
        assert spec_digest(spec) in repr(a)

    def test_content_key_equal_for_equal_machines(self):
        spec = tianhe1_cluster(cabinets=1)
        assert Cluster(spec, seed=2009).content_key() == Cluster(
            spec, seed=2009
        ).content_key()

    def test_content_key_tracks_spec_and_seed(self):
        tianhe = Cluster(tianhe1_cluster(cabinets=1), seed=2009)
        frontier = Cluster(frontier_cluster(nodes=1), seed=2009)
        reseeded = Cluster(tianhe1_cluster(cabinets=1), seed=2010)
        keys = [c.content_key() for c in (tianhe, frontier, reseeded)]
        assert len({tuple(sorted(k.items())) for k in keys}) == 3

    def test_spec_digest_sees_component_changes(self):
        spec = tianhe1_cluster(cabinets=1)
        slowed = replace(spec, variability=spec.variability)
        assert spec_digest(spec) == spec_digest(slowed)  # no-op replace
        downclocked = replace(
            spec, interconnect=replace(spec.interconnect, latency=1e-3)
        )
        assert spec_digest(spec) != spec_digest(downclocked)


class TestScenarioHashStability:
    def test_equal_cluster_scenarios_hash_equal(self):
        spec = tianhe1_cluster(cabinets=1)
        a = Scenario(scheduler="adaptive", n=8000, cluster=Cluster(spec, seed=2009))
        b = Scenario(scheduler="adaptive", n=8000, cluster=Cluster(spec, seed=2009))
        assert a.content_hash() == b.content_hash()

    def test_different_machines_hash_differently(self):
        a = Scenario(
            scheduler="adaptive", n=8000,
            cluster=Cluster(tianhe1_cluster(cabinets=1), seed=2009), grid=(2, 4),
        )
        b = Scenario(
            scheduler="adaptive", n=8000,
            cluster=Cluster(frontier_cluster(nodes=1), seed=2009), grid=(2, 4),
        )
        assert a.content_hash() != b.content_hash()


class TestCampaignCellKeys:
    def test_presets_with_equal_scenario_fields_do_not_alias(self):
        # Same n, grid, scheduler, seed — only the preset differs.  Before
        # the fix these could collide (the cluster's contribution was an
        # unstable address, equal by coincidence or absent).
        tianhe = cell_for("tianhe1-cabinet")
        frontier = cell_for("frontier-node")
        assert tianhe.cache_key() != frontier.cache_key()

    def test_key_is_reproducible(self):
        assert cell_for("element").cache_key() == cell_for("element").cache_key()

    def test_campaign_name_is_provenance_not_content(self):
        # A campaign run and a what-if query for the same semantic point
        # must share one cache entry — that is how campaigns pre-warm the
        # service.
        a = cell_for("element", campaign="nightly")
        b = cell_for("element", campaign="whatif")
        assert a.cache_key() == b.cache_key()
        assert a.cell_id != b.cell_id  # reports still tell them apart

    def test_every_other_coordinate_is_content(self):
        base = cell_for("element")
        variants = [
            cell_for("element", scheduler="static"),
            cell_for("element", n=12000),
            cell_for("element", grid=(1, 1)),
            cell_for("element", bcast="binomial"),
            cell_for("element", fault="gpu-throttle"),
            cell_for("element", rep=1, seed=4321),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_cross_process_key_stability(self):
        # The original bug was address-dependence: the same cell hashed
        # differently in a fresh interpreter.  Recompute in a subprocess.
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "from tests.campaign.test_cache_key import cell_for;"
            "print(cell_for('tianhe1-cabinet').cache_key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            cwd=str(Path(src).parent),
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == cell_for("tianhe1-cabinet").cache_key()

    def test_preset_identity_in_campaign_expansion(self):
        campaign = Campaign(
            name="alias", sizes=(8000,), machines=("tianhe1-cabinet", "frontier-node"),
            grids=((2, 2),),
        )
        cells = campaign.expand()
        assert len({c.cache_key() for c in cells}) == len(cells)
