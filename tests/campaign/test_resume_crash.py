"""SIGKILL a campaign mid-run; resume must re-run exactly the lost cells.

Same harness as ``tests/session/test_resume_crash.py``, one layer up: the
victim subprocess drives :func:`run_campaign` (journal at argv[1], disk
cache disabled so only the journal can save work), the parent SIGKILLs it
after a few journaled completions, and the assertions pin the campaign
checkpoint contract:

* the resume plan for the campaign's scenarios re-runs **exactly** the
  un-journaled cells;
* a resuming :func:`run_campaign` submits **only** those cells to the pool
  (``session.submitted`` equals the lost count) and completes every cell;
* the merged journal equals an uninterrupted campaign's, as a completion
  multiset.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.campaign.model import Campaign
from repro.campaign.runner import run_campaign
from repro.exec import policy as exec_policy
from repro.session import SweepJournal

REPRO_SRC = str(Path(repro.__file__).resolve().parents[1])

#: The campaign both the victim and the parent agree on: ten element cells.
CAMPAIGN = Campaign(
    name="crash-campaign",
    sizes=tuple(8000 + 100 * i for i in range(10)),
    schedulers=("cpu",),
)
KILL_AFTER = 3

VICTIM = textwrap.dedent(
    """
    import sys, time
    import repro.session.runtime as runtime
    from repro.campaign.model import Campaign
    from repro.campaign.runner import run_campaign

    _original = runtime._execute_scenario
    def _slowed(scenario, events_path=None):
        result = _original(scenario, events_path)
        time.sleep(0.25)   # let the parent's kill land mid-campaign
        return result
    runtime._execute_scenario = _slowed

    journal = sys.argv[1]
    print(journal, flush=True)
    campaign = Campaign(
        name="crash-campaign",
        sizes=tuple(8000 + 100 * i for i in range(10)),
        schedulers=("cpu",),
    )
    run_campaign(
        campaign, serial=True, use_cache=False, journal_path=journal, resume=True
    )
    print("CAMPAIGN-FINISHED", flush=True)   # must never be reached
    """
)


@pytest.fixture
def killed_campaign(tmp_path):
    """Journal path of a campaign whose driver was SIGKILLed mid-run."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [REPRO_SRC, env.get("PYTHONPATH", "")])
    )
    journal = tmp_path / "campaign.jsonl"
    process = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(journal)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        printed = process.stdout.readline().strip()
        assert printed == str(journal), process.stderr.read()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            records, _ = SweepJournal.load(journal)
            if len(records) >= KILL_AFTER:
                break
            assert process.poll() is None, (
                "campaign finished before the kill: " + process.stderr.read()
            )
            time.sleep(0.01)
        else:
            pytest.fail("campaign never journaled enough completions to kill")
        process.kill()
        process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL
        yield journal
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


class TestCampaignResumeAfterSigkill:
    def test_plan_pends_exactly_the_unjournaled_cells(self, killed_campaign):
        scenarios = [cell.scenario() for cell in CAMPAIGN.expand()]
        records, _ = SweepJournal.load(killed_campaign)
        assert KILL_AFTER <= len(records) < len(scenarios)

        plan = SweepJournal.plan(killed_campaign, scenarios)
        journaled = sorted(r["hash"] for r in records)
        done = sorted(scenarios[i].content_hash() for i in plan.done)
        pending = sorted(s.content_hash() for _, s in plan.pending)
        assert done == journaled
        assert sorted(done + pending) == sorted(s.content_hash() for s in scenarios)

    def test_resume_submits_only_the_lost_cells_and_completes_all(
        self, killed_campaign, tmp_path
    ):
        survived = len(SweepJournal.load(killed_campaign)[0])
        lost = len(CAMPAIGN.expand()) - survived

        telemetry = obs.Telemetry()
        with obs.use(telemetry), exec_policy.use(exec_policy.ExecutionPolicy(jobs=1)):
            result = run_campaign(
                CAMPAIGN,
                serial=True,
                use_cache=False,
                journal_path=killed_campaign,
                resume=True,
            )
            submitted = telemetry.metrics.counter("session.submitted").value()

        # Only the un-journaled cells hit the pool; every cell has a record.
        assert submitted == lost
        assert len(result.outcomes) == len(CAMPAIGN.expand())
        assert all(o.record is not None and o.record["gflops"] > 0 for o in result.outcomes)
        assert [o.record["n"] for o in result.outcomes] == list(CAMPAIGN.sizes)

        # The merged journal equals an uninterrupted campaign's, and the
        # records match it value-for-value (runs are deterministic).
        reference_journal = tmp_path / "uninterrupted.jsonl"
        reference = run_campaign(
            CAMPAIGN,
            serial=True,
            use_cache=False,
            journal_path=reference_journal,
            resume=True,
        )
        assert SweepJournal.completion_counts(
            killed_campaign
        ) == SweepJournal.completion_counts(reference_journal)
        assert [o.record for o in result.outcomes] == [
            o.record for o in reference.outcomes
        ]
