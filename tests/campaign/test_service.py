"""End-to-end what-if service kit: parity, coalescing, rate limits.

Everything here goes over real HTTP against the in-process server fixture
(``tests/campaign/conftest.py``).  The three contracts the ISSUE pins:

* **warm-vs-cold parity** — the response body for a cell is byte-identical
  whether it was just computed or served from cache; only the ``X-Cache``
  header differs, and a warm answer schedules **zero pool tasks**
  (``session.submitted`` does not move);
* **coalescing** — N concurrent identical cold queries produce exactly
  **one** pool task (``session.submitted == 1``, ``exec.cache.misses ==
  1``) and N identical bodies;
* **backpressure** — a tenant over its token-bucket budget gets 429 +
  ``Retry-After`` without disturbing other tenants.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from repro.campaign.model import Campaign
from repro.campaign.runner import run_campaign

SMALL = {"n": 8000, "machine": "element", "scheduler": "adaptive"}


def counter(telemetry, name: str) -> float:
    return telemetry.metrics.counter(name).value()


class TestEndpoints:
    def test_healthz(self, whatif_server):
        assert whatif_server.get_json("/healthz") == {"ok": True}

    def test_presets_lists_machines_and_faults(self, whatif_server):
        payload = whatif_server.get_json("/presets")
        assert "element" in payload["machines"]
        assert "frontier-node" in payload["machines"]
        assert payload["machines"]["frontier-node"]["elements"] == 8
        assert "stragglers-2pct" in payload["faults"]

    def test_unknown_path_is_404(self, whatif_server):
        status, _, _ = whatif_server.request("GET", "/nope")
        assert status == 404

    def test_query_requires_post(self, whatif_server):
        status, headers, _ = whatif_server.request("GET", "/query")
        assert status == 405
        assert headers["allow"] == "POST"

    def test_bad_queries_are_400(self, whatif_server):
        for payload in (
            {},  # no n
            {"n": 8000, "machine": "summit"},
            {"n": 8000, "color": "red"},
            {"n": 8000, "fault": "none", "straggler_pct": 2},
        ):
            status, _, body = whatif_server.post_query(payload)
            assert status == 400, payload
            assert "error" in json.loads(body)

    def test_unparseable_body_is_400(self, whatif_server):
        conn_status, _, body = whatif_server.request("POST", "/query")
        assert conn_status == 400  # empty body -> no 'n'
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", whatif_server.port, timeout=30)
        try:
            conn.request("POST", "/query", body="{not json", headers={"X-Tenant": "t"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestWarmColdParity:
    def test_cold_then_warm_byte_identical(self, whatif_server, campaign_telemetry):
        status, headers, cold_body = whatif_server.post_query(SMALL)
        assert status == 200
        assert headers["x-cache"] == "cold"
        submitted = counter(campaign_telemetry, "session.submitted")
        assert submitted == 1

        status, headers, warm_body = whatif_server.post_query(SMALL)
        assert status == 200
        assert headers["x-cache"] == "warm"
        # THE acceptance criterion: byte-identical body, zero pool tasks.
        assert warm_body == cold_body
        assert counter(campaign_telemetry, "session.submitted") == submitted
        assert counter(campaign_telemetry, "whatif.warm") == 1
        assert counter(campaign_telemetry, "exec.cache.hits") == 1

        payload = json.loads(cold_body)
        assert payload["record"]["gflops"] > 0
        assert payload["metrics"]["tflops"] > 0
        assert payload["coordinates"]["machine"] == "element"

    def test_warm_across_restart_from_disk_cache(self, make_whatif_server, tmp_path):
        first = make_whatif_server(cache_dir=tmp_path / "shared")
        _, headers, cold_body = first.post_query(SMALL)
        assert headers["x-cache"] == "cold"

        second = make_whatif_server(cache_dir=tmp_path / "shared")
        status, headers, warm_body = second.post_query(SMALL)
        assert status == 200
        assert headers["x-cache"] == "warm"
        assert warm_body == cold_body

    def test_campaign_run_pre_warms_the_service(
        self, make_whatif_server, tmp_path, campaign_telemetry
    ):
        cache_dir = tmp_path / "shared"
        campaign = Campaign(name="pre-warm", sizes=(8000,))
        run_campaign(
            campaign,
            serial=True,
            cache_dir=cache_dir,
            journal_path=tmp_path / "journal.jsonl",
        )
        submitted = counter(campaign_telemetry, "session.submitted")

        server = make_whatif_server(cache_dir=cache_dir)
        status, headers, body = server.post_query(SMALL)
        assert status == 200
        assert headers["x-cache"] == "warm"
        assert counter(campaign_telemetry, "session.submitted") == submitted
        assert json.loads(body)["record"]["gflops"] > 0

    def test_distinct_queries_do_not_alias(self, whatif_server):
        _, headers_a, body_a = whatif_server.post_query(SMALL)
        _, headers_b, body_b = whatif_server.post_query({**SMALL, "n": 9000})
        assert headers_b["x-cache"] == "cold"
        assert body_a != body_b


class TestCoalescing:
    def test_identical_concurrent_queries_share_one_pool_task(
        self, whatif_server, campaign_telemetry
    ):
        n_clients = 6
        query = {"n": 12000, "machine": "element"}  # slow enough to overlap
        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            results = list(
                pool.map(
                    lambda i: whatif_server.post_query(query, tenant=f"client-{i}"),
                    range(n_clients),
                )
            )
        assert all(status == 200 for status, _, _ in results)
        bodies = {body for _, _, body in results}
        assert len(bodies) == 1  # every client got the same bytes

        # Exactly ONE pool task and one cache miss for all six clients; the
        # other five either coalesced onto it or (a late arrival) hit the
        # now-warm cache.
        assert counter(campaign_telemetry, "session.submitted") == 1
        assert counter(campaign_telemetry, "exec.cache.misses") == 1
        statuses = [headers["x-cache"] for _, headers, _ in results]
        assert statuses.count("cold") == 1
        coalesced = counter(campaign_telemetry, "whatif.coalesced")
        warm = counter(campaign_telemetry, "whatif.warm")
        assert coalesced + warm == n_clients - 1
        assert whatif_server.service.stats["queries"] == n_clients


class TestRateLimits:
    def test_over_budget_tenant_gets_429_with_retry_after(self, make_whatif_server):
        server = make_whatif_server(rate=0.5, burst=2)
        server.post_query(SMALL, tenant="greedy")  # cold; consumes token 1

        status, _, _ = server.post_query(SMALL, tenant="greedy")
        assert status == 200  # token 2, warm
        status, headers, body = server.post_query(SMALL, tenant="greedy")
        assert status == 429
        assert float(headers["retry-after"]) > 0
        assert json.loads(body) == {"error": "rate limited"}
        assert server.service.stats["rate_limited"] >= 1

        # Another tenant has its own bucket and is unaffected.
        status, headers, _ = server.post_query(SMALL, tenant="patient")
        assert status == 200
        assert headers["x-cache"] == "warm"

    def test_bucket_refills(self, make_whatif_server):
        server = make_whatif_server(rate=50.0, burst=1)
        assert server.post_query(SMALL, tenant="t")[0] == 200
        status, headers, _ = server.post_query(SMALL, tenant="t")
        if status == 429:  # drained; refills at 50/s
            import time

            time.sleep(float(headers["retry-after"]) + 0.05)
            assert server.post_query(SMALL, tenant="t")[0] == 200


class TestStats:
    def test_stats_reflect_traffic(self, whatif_server):
        whatif_server.post_query(SMALL)
        whatif_server.post_query(SMALL)
        stats = whatif_server.get_json("/stats")
        assert stats["queries"] == 2
        assert stats["cold"] == 1 and stats["warm"] == 1
        assert stats["memo_entries"] == 1
        assert stats["in_flight"] == 0
