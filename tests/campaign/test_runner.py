"""Campaign execution: cache-first resolution, provenance, journaling."""

from __future__ import annotations

import pytest

from repro import obs
from repro.campaign.model import Campaign
from repro.campaign.runner import run_campaign
from repro.exec import policy as exec_policy
from repro.session import SweepJournal

QUICK = Campaign(name="runner-quick", sizes=(8000, 9000), schedulers=("adaptive",))


@pytest.fixture
def telemetry():
    telemetry = obs.Telemetry()
    with obs.use(telemetry), exec_policy.use(exec_policy.ExecutionPolicy(jobs=1)):
        yield telemetry


def run_quick(tmp_path, **kw):
    kw.setdefault("serial", True)
    kw.setdefault("cache_dir", tmp_path / "cache")
    kw.setdefault("journal_path", tmp_path / "journal.jsonl")
    return run_campaign(QUICK, **kw)


class TestRunCampaign:
    def test_first_run_is_all_misses_and_journaled(self, tmp_path, telemetry):
        result = run_quick(tmp_path)
        assert len(result.outcomes) == 2
        assert result.cache_hits == 0
        assert all(o.provenance["cache"] == "miss" for o in result.outcomes)
        assert all(o.record["gflops"] > 0 for o in result.outcomes)
        records, _ = SweepJournal.load(tmp_path / "journal.jsonl")
        assert len(records) == 2
        counters = telemetry.metrics
        assert counters.counter("campaign.cells").value() == 2
        assert counters.counter("campaign.cell_runs").value() == 2
        assert counters.counter("exec.cache.misses").value() == 2

    def test_second_run_is_all_hits_with_zero_pool_tasks(self, tmp_path, telemetry):
        first = run_quick(tmp_path)
        submitted_after_first = telemetry.metrics.counter("session.submitted").value()
        second = run_quick(tmp_path, journal_path=tmp_path / "second.jsonl")
        assert second.cache_hits == 2
        assert all(o.provenance["cache"] == "hit" for o in second.outcomes)
        # Warm resolution schedules nothing: the submitted counter did not
        # move, and the second journal was never created.
        assert (
            telemetry.metrics.counter("session.submitted").value()
            == submitted_after_first
        )
        assert not (tmp_path / "second.jsonl").exists()
        # Byte-level determinism: a cached record equals the fresh one.
        assert [o.record for o in second.outcomes] == [
            o.record for o in first.outcomes
        ]

    def test_no_cache_bypasses_lookup_and_store(self, tmp_path, telemetry):
        run_quick(tmp_path, use_cache=False)
        result = run_quick(
            tmp_path, use_cache=False, journal_path=tmp_path / "j2.jsonl"
        )
        assert result.cache_hits == 0
        assert telemetry.metrics.counter("exec.cache.hits").value() == 0

    def test_records_are_normalized(self, tmp_path, telemetry):
        result = run_quick(tmp_path)
        for outcome in result.outcomes:
            assert "wall" not in outcome.record
            assert "tenant" not in outcome.record

    def test_provenance_names_key_and_journal(self, tmp_path, telemetry):
        result = run_quick(tmp_path)
        for outcome in result.outcomes:
            assert outcome.provenance["key"] == outcome.cell.cache_key()[:16]
            assert outcome.provenance["journal"] == str(tmp_path / "journal.jsonl")
            assert outcome.provenance["cell_id"] == outcome.cell.cell_id

    def test_summary(self, tmp_path, telemetry):
        result = run_quick(tmp_path)
        summary = result.summary()
        assert summary["campaign"] == "runner-quick"
        assert summary["cells"] == 2 and summary["cache_hits"] == 0
        assert summary["best_tflops"] > 0
