"""Property suite: campaign expansion and export laws.

Campaign expansion is the layer everything downstream keys off — cache
keys, journals, reports — so its laws are pinned property-style over the
full declarative input space (``tests.strategies.campaign_specs``):

* **deterministic**: expanding twice yields identical cells;
* **duplicate-free**: no two cells share semantic coordinates;
* **order-stable**: matrix key order (and alias spelling) never changes
  the expansion;
* **seed-stable**: a cell's seed depends on its coordinates, not its
  position — growing an axis never re-seeds existing cells;
* **round-trip**: ``from_dict(to_dict(c)) == c`` and JSONL rows survive
  dump/parse byte-exactly.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings

from repro.campaign.export import read_jsonl, to_jsonl
from repro.campaign.model import Campaign
from repro.campaign.runner import CampaignResult, CellOutcome, normalize_record
from tests.strategies import campaign_sizes, campaign_specs

#: Expansion is pure compute — no per-example setup to reset.
RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def coords_tuple(cell):
    return tuple(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in sorted(cell.coordinates.items())
    )


@given(spec=campaign_specs())
@RELAXED
def test_expansion_is_deterministic(spec):
    campaign = Campaign.from_dict(spec)
    assert campaign.expand() == campaign.expand()


@given(spec=campaign_specs())
@RELAXED
def test_expansion_is_duplicate_free(spec):
    cells = Campaign.from_dict(spec).expand()
    assert len({coords_tuple(c) for c in cells}) == len(cells)
    assert len({c.cell_id for c in cells}) == len(cells)


@given(spec=campaign_specs())
@RELAXED
def test_expansion_is_stable_under_matrix_key_permutation(spec):
    reference = Campaign.from_dict(spec).expand()
    permuted = dict(spec)
    permuted["matrix"] = dict(reversed(list(spec["matrix"].items())))
    assert Campaign.from_dict(permuted).expand() == reference


@given(spec=campaign_specs())
@RELAXED
def test_declarative_round_trip(spec):
    campaign = Campaign.from_dict(spec)
    assert Campaign.from_dict(campaign.to_dict()) == campaign
    # And through actual JSON text, not just dicts.
    assert Campaign.from_dict(json.loads(json.dumps(campaign.to_dict()))) == campaign


@given(spec=campaign_specs(), extra_sizes=campaign_sizes)
@RELAXED
def test_growing_an_axis_never_reseeds_existing_cells(spec, extra_sizes):
    base = Campaign.from_dict(spec)
    grown_spec = dict(spec)
    grown_spec["matrix"] = dict(spec["matrix"])
    key = next(k for k in ("n", "size", "sizes") if k in grown_spec["matrix"])
    old = grown_spec["matrix"][key]
    old_list = old if isinstance(old, list) else [old]
    grown_spec["matrix"][key] = old_list + [
        s for s in extra_sizes if s not in old_list
    ]
    grown = Campaign.from_dict(grown_spec)
    base_seeds = {coords_tuple(c): c.seed for c in base.expand()}
    grown_seeds = {coords_tuple(c): c.seed for c in grown.expand()}
    for coords, seed in base_seeds.items():
        assert grown_seeds[coords] == seed


@given(spec=campaign_specs())
@RELAXED
def test_jsonl_rows_round_trip(spec):
    campaign = Campaign.from_dict(spec)
    cells = campaign.expand()[:6]
    outcomes = [
        CellOutcome(
            cell=cell,
            record=normalize_record(
                {
                    "v": 1, "hash": "0" * 16, "scheduler": cell.scheduler,
                    "n": cell.n, "seed": cell.seed,
                    "gflops": 50.0 + i, "elapsed": 1.0 + i, "degraded": None,
                }
            ),
            provenance={
                "key": f"{i:016x}", "code_version": "cafebabe",
                "cell_id": cell.cell_id, "cache": "miss", "journal": None,
            },
        )
        for i, cell in enumerate(cells)
    ]
    result = CampaignResult(campaign=campaign, outcomes=outcomes)
    rows = result.rows()
    parsed = read_jsonl(to_jsonl(result))
    assert parsed == json.loads(json.dumps(rows))
    # Dumping the parse reproduces the exact bytes (canonical form).
    reparsed = CampaignResult(campaign=campaign, outcomes=outcomes)
    assert to_jsonl(reparsed) == to_jsonl(result)
