"""The declarative campaign model: presets, faults, expansion, validation."""

from __future__ import annotations

import pytest

from repro.campaign.model import (
    MACHINES,
    Campaign,
    fault_model,
    machine_names,
    machine_preset,
)


class TestMachinePresets:
    def test_registry_covers_paper_and_exascale_machines(self):
        # The acceptance floor: TianHe-1 (the paper) AND a Frontier-style
        # node (PAPERS.md, arXiv 2304.10397) must both be queryable.
        names = machine_names()
        assert "element" in names
        assert "tianhe1-cabinet" in names and "tianhe1-full" in names
        assert "frontier-node" in names and "frontier-64node" in names

    def test_element_preset_has_no_cluster(self):
        preset = machine_preset("element")
        assert preset.spec() is None
        assert preset.build_cluster() is None
        assert preset.n_elements == 1
        assert preset.identity()["spec"] == "single-element"

    def test_frontier_node_shape(self):
        preset = machine_preset("frontier-node")
        assert preset.n_elements == 8  # 4 MI250X = 8 GCDs
        assert preset.default_grid == (2, 4)
        cluster = preset.build_cluster()
        assert cluster.n_elements == 8
        # An MI250X GCD is ~2 orders of magnitude past the paper's RV770.
        element_peak = machine_preset("element").peak_gflops((1, 1))
        frontier_peak = preset.peak_gflops((1, 1))
        assert frontier_peak > 20 * element_peak

    def test_identity_distinguishes_presets(self):
        identities = [
            tuple(sorted(machine_preset(name).identity().items()))
            for name in machine_names()
        ]
        assert len(set(identities)) == len(identities)

    def test_unknown_preset_raises_with_valid_list(self):
        with pytest.raises(ValueError, match="element"):
            machine_preset("summit")


class TestFaultModels:
    def test_none_builds_nothing(self):
        assert fault_model("none").build(64, seed=1) is None

    def test_straggler_fraction_scales_with_machine(self):
        spec = fault_model("stragglers-2pct").build(100, seed=1)
        assert len(spec.stragglers) == 2
        spec = fault_model("stragglers-2pct").build(5120, seed=1)
        assert len(spec.stragglers) == round(0.02 * 5120)

    def test_straggler_selection_is_seeded(self):
        a = fault_model("stragglers-5pct").build(64, seed=9)
        b = fault_model("stragglers-5pct").build(64, seed=9)
        c = fault_model("stragglers-5pct").build(64, seed=10)
        assert [s.element for s in a.stragglers] == [s.element for s in b.stragglers]
        assert [s.element for s in a.stragglers] != [s.element for s in c.stragglers]

    def test_parametric_straggler_names(self):
        model = fault_model("stragglers-7.5pct")
        assert model.fraction == pytest.approx(0.075)
        with pytest.raises(ValueError):
            fault_model("stragglers-200pct")
        with pytest.raises(ValueError, match="stragglers-<percent>pct"):
            fault_model("bitflips")

    def test_small_machine_still_gets_one_straggler(self):
        spec = fault_model("stragglers-2pct").build(1, seed=3)
        assert len(spec.stragglers) == 1


class TestCampaignExpansion:
    def test_cross_product_shape_and_order(self):
        campaign = Campaign(
            name="shape",
            sizes=(8000, 12000),
            schedulers=("adaptive", "static"),
            faults=("none", "gpu-throttle"),
            repetitions=2,
        )
        cells = campaign.expand()
        assert len(cells) == 2 * 2 * 2 * 2
        # Canonical nesting: scheduler varies slower than n, n slower than
        # fault, fault slower than rep.
        assert [c.scheduler for c in cells[:8]] == ["adaptive"] * 8
        assert [c.n for c in cells[:4]] == [8000] * 4
        assert [(c.fault, c.rep) for c in cells[:4]] == [
            ("none", 0), ("none", 1), ("gpu-throttle", 0), ("gpu-throttle", 1),
        ]

    def test_default_grid_comes_from_preset(self):
        campaign = Campaign(name="grids", sizes=(8000,), machines=("tianhe1-cabinet",))
        (cell,) = campaign.expand()
        assert cell.grid == MACHINES["tianhe1-cabinet"].default_grid

    def test_duplicate_axis_values_expand_once(self):
        campaign = Campaign(name="dupes", sizes=(8000, 8000, 12000))
        assert [c.n for c in campaign.expand()] == [8000, 12000]

    def test_seed_is_semantic_not_positional(self):
        base = Campaign(name="seeds", sizes=(8000, 12000))
        grown = Campaign(name="seeds", sizes=(4000, 8000, 12000))
        by_n_base = {c.n: c.seed for c in base.expand()}
        by_n_grown = {c.n: c.seed for c in grown.expand()}
        assert by_n_base == {n: by_n_grown[n] for n in by_n_base}

    def test_bcast_aliases_canonicalize(self):
        campaign = Campaign(name="bcast", sizes=(8000,), bcasts=("ring",))
        assert campaign.bcasts == ("1ring",)

    def test_scenario_carries_faults_and_overrides(self):
        campaign = Campaign(
            name="scenario",
            sizes=(8000,),
            machines=("tianhe1-cabinet",),
            faults=("stragglers-5pct",),
            bcasts=("binomial",),
        )
        (cell,) = campaign.expand()
        scenario = cell.scenario()
        assert scenario.cluster is not None
        assert len(scenario.faults.stragglers) == round(0.05 * 64)
        assert scenario.overrides == {"bcast_algo": "binomial"}
        assert (scenario.grid.nprow, scenario.grid.npcol) == (8, 8)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(sizes=()), "at least one"),
            (dict(sizes=(8000,), machines=("summit",)), "unknown machine"),
            (dict(sizes=(8000,), schedulers=("fifo",)), "no HPL build"),
            (dict(sizes=(8000,), faults=("bitflips",)), "unknown fault"),
            (dict(sizes=(8000,), bcasts=("gossip",)), "unknown broadcast"),
            (dict(sizes=(8000,), extractor="perf"), "unknown metric extractor"),
            (dict(sizes=(-5,)), "must be > 0"),
            (dict(sizes=(8000,), repetitions=0), "must be > 0"),
        ],
    )
    def test_validation_happens_at_construction(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            Campaign(name="bad", **kwargs)


class TestDeclarativeRoundTrip:
    def test_from_dict_accepts_aliases_and_scalars(self):
        campaign = Campaign.from_dict(
            {"name": "aliased", "matrix": {"size": 8000, "machines": "element"}}
        )
        assert campaign.sizes == (8000,)
        assert campaign.machines == ("element",)

    def test_unknown_keys_raise(self):
        with pytest.raises(ValueError, match="unknown campaign key"):
            Campaign.from_dict({"name": "x", "matrix": {"n": [1000]}, "color": "red"})
        with pytest.raises(ValueError, match="unknown matrix axis"):
            Campaign.from_dict({"name": "x", "matrix": {"n": [1000], "gpu": ["a"]}})

    def test_duplicate_axis_spellings_raise(self):
        with pytest.raises(ValueError, match="more than once"):
            Campaign.from_dict(
                {"name": "x", "matrix": {"n": [1000], "size": [2000]}}
            )

    def test_to_dict_round_trips(self):
        campaign = Campaign(
            name="rt",
            sizes=(8000, 12000),
            machines=("element", "frontier-node"),
            faults=("none", "stragglers-2pct"),
            grids=(None, (2, 4)),
            repetitions=2,
            seed=99,
        )
        assert Campaign.from_dict(campaign.to_dict()) == campaign
