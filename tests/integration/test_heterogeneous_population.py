"""The mixed E5540/E5450 population, exercised end to end.

TianHe-1's last 512 nodes carry the faster-clocked E5450 (whose paired-L2
architecture is the one Section IV.A singles out); these tests make sure
the whole stack — specs, DES elements, rate tables, the analytic stepper —
treats the two populations consistently.
"""

import numpy as np
import pytest

from repro.core.hybrid_dgemm import HybridDgemm, cpu_only_dgemm
from repro.session import Scenario, run as run_scenario
from repro.hpl.grid import ProcessGrid
from repro.machine.cluster import Cluster
from repro.machine.node import ComputeElement
from repro.machine.presets import XEON_E5450, tianhe1_cluster, tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.sim import Simulator
from tests.conftest import build_adaptive_mapper, build_element


def make_e5450_element():
    return build_element(cpu=XEON_E5450)


class TestE5450Element:
    def test_peak_higher_than_e5540(self):
        e5450 = make_e5450_element()
        e5540 = ComputeElement(Simulator(), tianhe1_element(), variability=NO_VARIABILITY)
        assert e5450.peak_flops > e5540.peak_flops
        assert e5450.peak_flops == pytest.approx(288e9, rel=1e-3)  # 240 + 48

    def test_initial_gsplit_lower_with_faster_cpu(self):
        """A faster CPU earns a larger share: GSplit_0 = 240/(240+36) = 0.87."""
        e5450 = make_e5450_element()
        assert e5450.initial_gsplit == pytest.approx(240 / 276, abs=1e-3)
        assert e5450.initial_gsplit < 0.889

    def test_l2_sibling_flag(self):
        e5450 = make_e5450_element()
        assert e5450.cores[1].l2_shares_with_transfer  # pairs (0,1), (2,3)

    def test_cpu_only_dgemm_rate(self):
        element = make_e5450_element()
        sim = element.sim
        n = 4096
        elapsed = sim.run(until=sim.process(cpu_only_dgemm(element, n, n, n, jitter=False)))
        assert 2.0 * n**3 / elapsed == pytest.approx(4 * 12e9 * 0.885, rel=0.01)

    def test_hybrid_dgemm_faster_than_e5540(self):
        results = {}
        for name, element in (
            ("e5540", build_element()),
            ("e5450", make_e5450_element()),
        ):
            mapper = build_adaptive_mapper(element, 24576, k=24576, slack=1.0)
            engine = HybridDgemm(element, mapper, pipelined=True, jitter=False)
            for _ in range(3):
                results[name] = engine.run_to_completion(12288, 12288, 1216).gflops
        assert results["e5450"] > results["e5540"]


class TestMixedClusterLinpack:
    def test_mixed_tail_cabinet_outperforms_head_cabinet(self):
        """Cabinet 79 (E5450 nodes) should edge out cabinet 0 (E5540)."""
        spec = tianhe1_cluster(cabinets=80, variability=NO_VARIABILITY)
        cluster = Cluster(spec, seed=2009)
        table = cluster.rate_table()
        head = table.subset(np.arange(0, 64))
        tail = table.subset(np.arange(table.n_elements - 64, table.n_elements))
        assert tail.cpu_full_rate.mean() > head.cpu_full_rate.mean()

    def test_full_population_counts(self):
        spec = tianhe1_cluster(cabinets=80, variability=NO_VARIABILITY)
        cluster = Cluster(spec, seed=1)
        table = cluster.rate_table()
        e5450_rate = 48e9 * 0.885
        n_fast = int(np.sum(np.isclose(table.cpu_full_rate, e5450_rate)))
        assert n_fast == 1024  # 512 nodes x 2 elements

    def test_linpack_runs_on_mixed_grid(self):
        """A grid spanning both populations runs and is internally consistent."""
        spec = tianhe1_cluster(cabinets=80, variability=NO_VARIABILITY)
        cluster = Cluster(spec, seed=2009)
        result = run_scenario(
            Scenario(
                scheduler="acmlg_both", n=400_000, cluster=cluster,
                grid=ProcessGrid(16, 32),
            )
        )
        assert result.tflops > 50
