"""End-to-end integration: every layer of the stack in one run.

Numeric distributed HPL over simulated MPI, with each rank's local update
running through the full hybrid machinery (adaptive mapper + task queue +
software pipeline) on its own simulated compute element — then the solution
is checked with the official HPL residual test.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveMapper
from repro.core.hybrid_dgemm import HybridDgemm
from repro.hpl.dist import DistributedLU, ElementEngine
from repro.hpl.grid import ProcessGrid
from repro.hpl.solve import hpl_residual_ok, solve_from_factorization
from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND, tianhe1_element
from repro.machine.node import ComputeElement
from repro.machine.variability import VariabilitySpec
from repro.mpi.comm import SimMPI
from repro.sim import Simulator
from repro.util.rng import RngStream
from repro.util.units import dgemm_flops


def full_stack_factorization(n=64, nb=8, p=2, q=2, seed=0, runs=1):
    sim = Simulator()
    grid = ProcessGrid(p, q)
    network = Interconnect(sim, QDR_INFINIBAND, grid.size)
    world = SimMPI(sim, grid.size, network)
    var = VariabilitySpec(
        core_jitter_sigma=0.02, gpu_jitter_sigma=0.01, element_spread_sigma=0.03,
        l2_share_penalty=0.12, thermal_drift_depth=0.0,
    )
    engines = []
    mappers = []
    for rank in range(grid.size):
        element = ComputeElement(
            sim, tianhe1_element(), variability=var,
            rng=RngStream(seed).child(f"rank{rank}"), name=f"rank{rank}",
        )
        mapper = AdaptiveMapper(
            element.initial_gsplit, 3, max_workload=dgemm_flops(n, n, nb) * 2
        )
        mappers.append(mapper)
        engines.append(ElementEngine(HybridDgemm(element, mapper, pipelined=True)))
    lu = DistributedLU(sim, grid, nb, world, engines=engines)
    rng = np.random.default_rng(seed + 1)
    a = rng.standard_normal((n, n))
    results = [lu.factor(a) for _ in range(runs)]
    return a, grid, results[-1], mappers, world


class TestFullStack:
    def test_residual_passes_with_adaptive_hybrid_engines(self):
        a, grid, result, _, _ = full_stack_factorization()
        b = np.random.default_rng(9).standard_normal(64)
        x = solve_from_factorization(grid, result, 64, 8, b)
        residual, ok = hpl_residual_ok(a, x, b)
        assert ok, f"residual {residual}"

    def test_every_mapper_learned(self):
        _, _, _, mappers, _ = full_stack_factorization()
        assert all(m.updates > 0 for m in mappers)
        for mapper in mappers:
            assert len(mapper.database_g.history) == mapper.updates

    def test_network_traffic_happened(self):
        _, _, result, _, world = full_stack_factorization()
        assert world.messages_sent > 20
        assert result.elapsed > 0

    def test_heterogeneous_elements_have_different_timings(self):
        _, _, result, _, _ = full_stack_factorization()
        updates = [s.update_time for s in result.stats]
        assert max(updates) > min(updates)  # element spread + jitter is visible

    def test_rectangular_grid(self):
        a, grid, result, _, _ = full_stack_factorization(n=60, nb=6, p=3, q=2, seed=5)
        b = np.random.default_rng(10).standard_normal(60)
        x = solve_from_factorization(grid, result, 60, 6, b)
        _, ok = hpl_residual_ok(a, x, b)
        assert ok

    def test_deterministic_given_seed(self):
        _, _, r1, _, _ = full_stack_factorization(seed=3)
        _, _, r2, _, _ = full_stack_factorization(seed=3)
        assert r1.elapsed == r2.elapsed
        assert np.array_equal(r1.piv, r2.piv)
