"""Failure injection: the adaptive framework under changing conditions.

These are the scenarios Section IV argues for: device rates change at run
time (thermal throttling, a degraded core, drifting conditions), and a
mapping must either track them (adaptive) or eat the imbalance (static,
trained).  Each test injects a condition change mid-sequence and checks both
that the adaptive mapper reacts the way the paper's update rule dictates and
that it beats the static baseline afterwards.
"""

import numpy as np
import pytest

from repro.core.hybrid_dgemm import HybridDgemm
from repro.core.static_map import StaticMapper
from repro.machine.presets import DOWNCLOCKED_MHZ
from repro.machine.variability import NO_VARIABILITY, VariabilitySpec, thermal_drift
from tests.conftest import build_adaptive_mapper, build_element

N = 10240


def make_engine(mapper_kind: str, variability=NO_VARIABILITY):
    element = build_element(variability=variability)
    if mapper_kind == "adaptive":
        mapper = build_adaptive_mapper(element, N, k=N)
    else:
        mapper = StaticMapper(element.initial_gsplit, 3)
    return element, mapper, HybridDgemm(element, mapper, pipelined=True, jitter=False)


class TestGpuDownclock:
    """Mid-run 750 -> 575 MHz downclock (the paper's thermal emergency)."""

    def run_sequence(self, mapper_kind):
        element, mapper, engine = make_engine(mapper_kind)
        times = []
        for run in range(8):
            if run == 4:
                element.gpu.set_clock(DOWNCLOCKED_MHZ)
            times.append(engine.run_to_completion(N, N, N).t_total)
        return element, mapper, times

    def test_downclock_slows_everyone(self):
        _, _, times = self.run_sequence("static")
        assert min(times[4:]) > max(times[:4])

    def test_adaptive_rebalances_split(self):
        element, mapper, _ = self.run_sequence("adaptive")
        splits = [w.value for w in mapper.database_g.history]
        # After the downclock the GPU's measured rate drops, so the stored
        # split must decrease (work shifts toward the CPU cores).
        assert splits[-1] < splits[3] - 0.005

    def test_adaptive_recovers_better_than_static(self):
        _, _, adaptive_times = self.run_sequence("adaptive")
        _, _, static_times = self.run_sequence("static")
        assert adaptive_times[-1] <= static_times[-1]


class TestSlowCoreInjection:
    """One compute core degrades 40% mid-run (Section IV.A's scenario)."""

    def run_sequence(self, mapper_kind):
        element, mapper, engine = make_engine(mapper_kind)
        times = []
        for run in range(8):
            if run == 4:
                element.compute_cores[1].static_factor *= 0.6
            times.append(engine.run_to_completion(N, N, N).t_total)
        return element, mapper, times

    def test_level2_shifts_rows_away_from_slow_core(self):
        element, mapper, _ = self.run_sequence("adaptive")
        cs = mapper.csplits()
        assert cs[1] < cs[0] and cs[1] < cs[2]
        # Fixed point: rates (r, 0.6r, r) -> splits (1, 0.6, 1)/2.6.
        assert cs[1] == pytest.approx(0.6 / 2.6, abs=0.03)

    def test_adaptive_beats_static_after_injection(self):
        _, _, adaptive_times = self.run_sequence("adaptive")
        _, _, static_times = self.run_sequence("static")
        assert adaptive_times[-1] < static_times[-1]

    def test_static_pays_the_amplified_cost(self):
        """With even splits the slow core gates the whole CPU portion."""
        _, _, static_times = self.run_sequence("static")
        _, mapper, adaptive_times = self.run_sequence("adaptive")
        static_hit = static_times[-1] / static_times[3] - 1.0
        adaptive_hit = adaptive_times[-1] / adaptive_times[3] - 1.0
        assert static_hit > adaptive_hit


class TestThermalDriftTracking:
    """A strongly drifting GPU: adaptive follows, static does not."""

    def make_drifting(self, mapper_kind, depth=0.25, tau=30.0):
        element, mapper, engine = make_engine(mapper_kind)
        element.gpu.drift = thermal_drift(depth, tau)
        return element, mapper, engine

    def test_gpu_rate_declines_over_the_run(self):
        element, _, engine = self.make_drifting("adaptive")
        cold = element.gpu.kernel_rate(1e12, at_time=0.0)
        engine.run_to_completion(N, N, N)
        hot = element.gpu.kernel_rate(1e12)
        assert hot < cold

    def test_adaptive_tracks_the_drift(self):
        element, mapper, engine = self.make_drifting("adaptive")
        for _ in range(6):
            engine.run_to_completion(N, N, N)
        splits = [w.value for w in mapper.database_g.history]
        assert splits[-1] < splits[0]  # work migrated off the cooling-limited GPU

    def test_adaptive_total_time_beats_static(self):
        totals = {}
        for kind in ("adaptive", "static"):
            element, _, engine = self.make_drifting(kind)
            for _ in range(6):
                engine.run_to_completion(N, N, N)
            totals[kind] = element.sim.now
        assert totals["adaptive"] < totals["static"]


class TestJitterRobustness:
    def test_adaptive_splits_stay_bounded_under_noise(self):
        var = VariabilitySpec(core_jitter_sigma=0.10, gpu_jitter_sigma=0.08)
        element, mapper, engine = make_engine("adaptive", variability=var)
        for _ in range(10):
            engine.run_to_completion(N, N, N)
        splits = np.array([w.value for w in mapper.database_g.history])
        assert np.all((splits > 0.5) & (splits <= 1.0))
        # The split hovers around the true balance despite 8-10% noise.
        assert 0.8 < splits[-5:].mean() < 0.95
