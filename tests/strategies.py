"""Shared hypothesis strategies for the property-based suites.

Strategies generate *physically sensible* inputs (positive rates, consistent
workload partitions, fault factors in the modelled range) so properties test
the model's laws, not garbage-in tolerance.  Import as ``tests.strategies``.
"""

from hypothesis import strategies as st

from repro.core.adaptive import Observation

#: GPU fault factors: 1.0 = healthy, down to a deep 10% throttle.  Zero is
#: excluded — a dead GPU goes through notify_gpu_lost, not a rate factor.
fault_factors = st.floats(0.1, 1.0, allow_nan=False, allow_infinity=False)

#: Split fractions over the full closed range.
gsplits = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)

#: DGEMM workloads in flops, panel-update sized (nonzero, up to ~2N^3 at 20k).
workloads = st.floats(1e9, 1.6e13, allow_nan=False, allow_infinity=False)

#: Device rates in flop/s: from a crippled core to a healthy GPU.
rates = st.floats(1e9, 400e9, allow_nan=False, allow_infinity=False)

#: (P_G, P_C) pairs for stationary-rate convergence runs.
rate_pairs = st.tuples(rates, rates)


@st.composite
def observations(draw, n_cores: int = 3) -> Observation:
    """A consistent Observation: a workload split between GPU and cores,
    every part timed at a finite positive rate (possibly fault-scaled)."""
    workload = draw(workloads)
    gsplit = draw(gsplits)
    gpu_workload = gsplit * workload
    gpu_rate = draw(rates) * draw(fault_factors)
    cpu_workload = workload - gpu_workload
    core_shares = draw(
        st.lists(st.floats(0.05, 1.0), min_size=n_cores, max_size=n_cores)
    )
    total_share = sum(core_shares)
    core_workloads = tuple(cpu_workload * s / total_share for s in core_shares)
    core_rates = [draw(rates) for _ in range(n_cores)]
    return Observation(
        workload=workload,
        gpu_workload=gpu_workload,
        gpu_time=gpu_workload / gpu_rate,
        core_workloads=core_workloads,
        core_times=tuple(
            w / r for w, r in zip(core_workloads, core_rates)
        ),
    )


@st.composite
def observation_sequences(draw, n_cores: int = 3, max_length: int = 12):
    """Short sequences of consistent observations (mapper warm-up runs)."""
    length = draw(st.integers(1, max_length))
    return [draw(observations(n_cores=n_cores)) for _ in range(length)]


# -- MPI message payloads -----------------------------------------------------
#
# Everything repro.mpi.comm.payload_nbytes knows how to cost and every shape
# the BCAST ``long`` algorithm must split/rejoin losslessly: arrays (including
# zero-size ones — a ragged scatter can hand a rank nothing), scalars, strings
# and bytes, and containers nesting all of the above.

#: Array shapes including empty axes (0-byte arrays must travel for free).
array_shapes = st.sampled_from([(0,), (1,), (7,), (13,), (4, 3), (0, 5), (2, 2, 2)])

#: Dtypes with distinct element sizes (wire volume must track ``nbytes``).
array_dtypes = st.sampled_from(["float64", "int64", "uint8"])


@st.composite
def message_arrays(draw):
    """Small numpy arrays of varied shape and dtype, deterministic values."""
    import numpy as np

    shape = draw(array_shapes)
    dtype = draw(array_dtypes)
    size = 1
    for dim in shape:
        size *= dim
    data = draw(st.lists(st.integers(0, 100), min_size=size, max_size=size))
    return np.array(data, dtype=dtype).reshape(shape)


#: Scalar payloads: everything costed at 8 bytes, plus strings and bytes.
message_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
    st.binary(max_size=8),
)

#: Full payload space: arrays, scalars, and containers mixing both.
message_payloads = st.one_of(
    message_arrays(),
    message_scalars,
    st.tuples(message_arrays(), message_scalars),
    st.lists(message_scalars, max_size=3),
    st.dictionaries(st.text(max_size=4), message_scalars, max_size=3),
)


# -- session runtime churn ----------------------------------------------------
#
# Abstract operation streams for the fair-share scheduler and the async
# session runtime (tests/session/test_properties.py).  Ops are tagged
# tuples interpreted against live state: the integer picks a target job
# *modulo the current live set*, so every generated stream is executable —
# shrinking stays effective because no op is ever discarded as invalid.

#: Tenant name pool: small enough that streams collide tenants constantly.
tenant_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])

#: One abstract churn op: (kind, tenant-for-submits, job-selector).
churn_op = st.tuples(
    st.sampled_from(["submit", "grant", "finish", "cancel"]),
    tenant_names,
    st.integers(0, 63),
)

#: Streams of churn ops, long enough to fill and drain small schedulers.
churn_op_streams = st.lists(churn_op, max_size=80)

#: Scheduler shapes that hit every cap with streams of the above length.
scheduler_shapes = st.tuples(
    st.integers(1, 6),  # slots
    st.integers(1, 4),  # max_in_flight
    st.integers(1, 8),  # max_queued
)

#: Runtime interleavings: submit under a tenant, cancel a live handle, or
#: yield to the event loop (letting finalizations land between ops).
runtime_op = st.tuples(
    st.sampled_from(["submit", "cancel", "yield"]),
    tenant_names,
    st.integers(0, 63),
)

runtime_op_streams = st.lists(runtime_op, max_size=40)


# -- campaign matrices ---------------------------------------------------------
#
# Declarative campaign specs for tests/campaign/test_properties.py.  Axes draw
# from the real registries (machine presets, schedulers, bcast algorithms,
# fault models) so every generated campaign passes construction-time
# validation; expansion-level properties never build a cluster, so the big
# presets are cheap to include.

#: Problem sizes small enough to be plausible, with duplicates allowed
#: (expansion must dedupe them).
campaign_sizes = st.lists(
    st.sampled_from([4000, 8000, 12000, 20000, 40000]), min_size=1, max_size=4
)

campaign_machines = st.lists(
    st.sampled_from(
        ["element", "tianhe1-cabinet", "tianhe1-full", "frontier-node", "frontier-64node"]
    ),
    min_size=1,
    max_size=3,
    unique=True,
)

campaign_schedulers = st.lists(
    st.sampled_from(["adaptive", "static", "cpu"]), min_size=1, max_size=2, unique=True
)

#: None (preset default) plus explicit bcasts, including an alias that must
#: canonicalize ("ring" -> "1ring").
campaign_bcasts = st.lists(
    st.sampled_from([None, "binomial", "1ring", "ring", "long"]),
    min_size=1,
    max_size=2,
    unique=True,
)

campaign_faults = st.lists(
    st.sampled_from(["none", "stragglers-2pct", "stragglers-3.5pct", "gpu-throttle"]),
    min_size=1,
    max_size=2,
    unique=True,
)

campaign_grids = st.lists(
    st.sampled_from([None, (1, 1), (2, 2), (2, 4)]), min_size=1, max_size=2, unique=True
)


@st.composite
def campaign_specs(draw) -> dict:
    """A declarative campaign payload in the :meth:`Campaign.from_dict` shape."""
    matrix: dict = {"n": draw(campaign_sizes)}
    if draw(st.booleans()):
        matrix["machine"] = draw(campaign_machines)
    if draw(st.booleans()):
        matrix["scheduler"] = draw(campaign_schedulers)
    if draw(st.booleans()):
        matrix["bcast"] = draw(campaign_bcasts)
    if draw(st.booleans()):
        matrix["fault"] = draw(campaign_faults)
    if draw(st.booleans()):
        matrix["grid"] = [
            None if g is None else list(g) for g in draw(campaign_grids)
        ]
    return {
        "name": draw(st.sampled_from(["alpha", "sweep-7", "exa"])),
        "matrix": matrix,
        "repetitions": draw(st.integers(1, 3)),
        "seed": draw(st.integers(0, 2**32 - 1)),
    }
