"""Shared hypothesis strategies for the property-based suites.

Strategies generate *physically sensible* inputs (positive rates, consistent
workload partitions, fault factors in the modelled range) so properties test
the model's laws, not garbage-in tolerance.  Import as ``tests.strategies``.
"""

from hypothesis import strategies as st

from repro.core.adaptive import Observation

#: GPU fault factors: 1.0 = healthy, down to a deep 10% throttle.  Zero is
#: excluded — a dead GPU goes through notify_gpu_lost, not a rate factor.
fault_factors = st.floats(0.1, 1.0, allow_nan=False, allow_infinity=False)

#: Split fractions over the full closed range.
gsplits = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)

#: DGEMM workloads in flops, panel-update sized (nonzero, up to ~2N^3 at 20k).
workloads = st.floats(1e9, 1.6e13, allow_nan=False, allow_infinity=False)

#: Device rates in flop/s: from a crippled core to a healthy GPU.
rates = st.floats(1e9, 400e9, allow_nan=False, allow_infinity=False)

#: (P_G, P_C) pairs for stationary-rate convergence runs.
rate_pairs = st.tuples(rates, rates)


@st.composite
def observations(draw, n_cores: int = 3) -> Observation:
    """A consistent Observation: a workload split between GPU and cores,
    every part timed at a finite positive rate (possibly fault-scaled)."""
    workload = draw(workloads)
    gsplit = draw(gsplits)
    gpu_workload = gsplit * workload
    gpu_rate = draw(rates) * draw(fault_factors)
    cpu_workload = workload - gpu_workload
    core_shares = draw(
        st.lists(st.floats(0.05, 1.0), min_size=n_cores, max_size=n_cores)
    )
    total_share = sum(core_shares)
    core_workloads = tuple(cpu_workload * s / total_share for s in core_shares)
    core_rates = [draw(rates) for _ in range(n_cores)]
    return Observation(
        workload=workload,
        gpu_workload=gpu_workload,
        gpu_time=gpu_workload / gpu_rate,
        core_workloads=core_workloads,
        core_times=tuple(
            w / r for w, r in zip(core_workloads, core_rates)
        ),
    )


@st.composite
def observation_sequences(draw, n_cores: int = 3, max_length: int = 12):
    """Short sequences of consistent observations (mapper warm-up runs)."""
    length = draw(st.integers(1, max_length))
    return [draw(observations(n_cores=n_cores)) for _ in range(length)]
