"""Shared hypothesis strategies for the property-based suites.

Strategies generate *physically sensible* inputs (positive rates, consistent
workload partitions, fault factors in the modelled range) so properties test
the model's laws, not garbage-in tolerance.  Import as ``tests.strategies``.
"""

from hypothesis import strategies as st

from repro.core.adaptive import Observation

#: GPU fault factors: 1.0 = healthy, down to a deep 10% throttle.  Zero is
#: excluded — a dead GPU goes through notify_gpu_lost, not a rate factor.
fault_factors = st.floats(0.1, 1.0, allow_nan=False, allow_infinity=False)

#: Split fractions over the full closed range.
gsplits = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)

#: DGEMM workloads in flops, panel-update sized (nonzero, up to ~2N^3 at 20k).
workloads = st.floats(1e9, 1.6e13, allow_nan=False, allow_infinity=False)

#: Device rates in flop/s: from a crippled core to a healthy GPU.
rates = st.floats(1e9, 400e9, allow_nan=False, allow_infinity=False)

#: (P_G, P_C) pairs for stationary-rate convergence runs.
rate_pairs = st.tuples(rates, rates)


@st.composite
def observations(draw, n_cores: int = 3) -> Observation:
    """A consistent Observation: a workload split between GPU and cores,
    every part timed at a finite positive rate (possibly fault-scaled)."""
    workload = draw(workloads)
    gsplit = draw(gsplits)
    gpu_workload = gsplit * workload
    gpu_rate = draw(rates) * draw(fault_factors)
    cpu_workload = workload - gpu_workload
    core_shares = draw(
        st.lists(st.floats(0.05, 1.0), min_size=n_cores, max_size=n_cores)
    )
    total_share = sum(core_shares)
    core_workloads = tuple(cpu_workload * s / total_share for s in core_shares)
    core_rates = [draw(rates) for _ in range(n_cores)]
    return Observation(
        workload=workload,
        gpu_workload=gpu_workload,
        gpu_time=gpu_workload / gpu_rate,
        core_workloads=core_workloads,
        core_times=tuple(
            w / r for w, r in zip(core_workloads, core_rates)
        ),
    )


@st.composite
def observation_sequences(draw, n_cores: int = 3, max_length: int = 12):
    """Short sequences of consistent observations (mapper warm-up runs)."""
    length = draw(st.integers(1, max_length))
    return [draw(observations(n_cores=n_cores)) for _ in range(length)]


# -- MPI message payloads -----------------------------------------------------
#
# Everything repro.mpi.comm.payload_nbytes knows how to cost and every shape
# the BCAST ``long`` algorithm must split/rejoin losslessly: arrays (including
# zero-size ones — a ragged scatter can hand a rank nothing), scalars, strings
# and bytes, and containers nesting all of the above.

#: Array shapes including empty axes (0-byte arrays must travel for free).
array_shapes = st.sampled_from([(0,), (1,), (7,), (13,), (4, 3), (0, 5), (2, 2, 2)])

#: Dtypes with distinct element sizes (wire volume must track ``nbytes``).
array_dtypes = st.sampled_from(["float64", "int64", "uint8"])


@st.composite
def message_arrays(draw):
    """Small numpy arrays of varied shape and dtype, deterministic values."""
    import numpy as np

    shape = draw(array_shapes)
    dtype = draw(array_dtypes)
    size = 1
    for dim in shape:
        size *= dim
    data = draw(st.lists(st.integers(0, 100), min_size=size, max_size=size))
    return np.array(data, dtype=dtype).reshape(shape)


#: Scalar payloads: everything costed at 8 bytes, plus strings and bytes.
message_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
    st.binary(max_size=8),
)

#: Full payload space: arrays, scalars, and containers mixing both.
message_payloads = st.one_of(
    message_arrays(),
    message_scalars,
    st.tuples(message_arrays(), message_scalars),
    st.lists(message_scalars, max_size=3),
    st.dictionaries(st.text(max_size=4), message_scalars, max_size=3),
)
