"""Unit and property tests for the LU factorization kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.dgetrf import SingularMatrixError, dgetf2, dgetrf, lu_solve
from repro.blas.dlaswp import invert_permutation
from repro.blas.reference import extract_lu, hpl_residual


def random_matrix(n, m=None, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, m if m is not None else n))


def assert_palu(a_original, a_factored, piv):
    """Check P A = L U via the recorded pivots."""
    n = a_original.shape[0]
    l, u = extract_lu(a_factored)
    perm = invert_permutation(piv, n)
    assert np.allclose(a_original[perm], l @ u, atol=1e-9)


class TestDgetf2:
    def test_square_palu(self):
        a0 = random_matrix(8, seed=1)
        a = a0.copy()
        piv = dgetf2(a)
        assert_palu(a0, a, piv)

    def test_tall_panel(self):
        """The HPL panel case: m >> nb."""
        a0 = random_matrix(20, 4, seed=2)
        a = a0.copy()
        piv = dgetf2(a)
        l, u = extract_lu(a)
        perm = invert_permutation(piv, 20)
        assert np.allclose(a0[perm], l @ u, atol=1e-9)

    def test_pivot_magnitudes(self):
        """Partial pivoting keeps all multipliers <= 1."""
        a = random_matrix(10, seed=3)
        dgetf2(a)
        l = np.tril(a, -1)
        assert np.max(np.abs(l)) <= 1.0 + 1e-12

    def test_offset_shifts_pivots(self):
        a = random_matrix(5, seed=4)
        piv0 = dgetf2(a.copy(), offset=0)
        piv7 = dgetf2(a.copy(), offset=7)
        assert np.array_equal(piv7, piv0 + 7)

    def test_singular_detected(self):
        with pytest.raises(SingularMatrixError):
            dgetf2(np.zeros((3, 3)))

    def test_1x1(self):
        a = np.array([[2.0]])
        piv = dgetf2(a)
        assert piv.tolist() == [0]
        assert a[0, 0] == 2.0


class TestDgetrf:
    @pytest.mark.parametrize("nb", [1, 2, 3, 8, 64])
    def test_blocked_matches_unblocked(self, nb):
        a0 = random_matrix(12, seed=5)
        blocked = a0.copy()
        piv_b = dgetrf(blocked, nb=nb)
        unblocked = a0.copy()
        piv_u = dgetf2(unblocked)
        assert np.allclose(blocked, unblocked, atol=1e-9)
        assert np.array_equal(piv_b, piv_u)

    def test_palu_identity(self):
        a0 = random_matrix(30, seed=6)
        a = a0.copy()
        piv = dgetrf(a, nb=7)
        assert_palu(a0, a, piv)

    def test_matches_scipy(self):
        import scipy.linalg

        a0 = random_matrix(16, seed=7)
        a = a0.copy()
        dgetrf(a, nb=4)
        p, l, u = scipy.linalg.lu(a0)
        ours_l, ours_u = extract_lu(a)
        # Same factorization up to the permutation convention: compare P A = L U.
        assert np.allclose(ours_l @ ours_u, (p.T @ a0), atol=1e-9)

    def test_rejects_bad_nb(self):
        with pytest.raises(ValueError):
            dgetrf(random_matrix(4), nb=0)

    @given(st.integers(2, 24), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_palu(self, n, nb, seed):
        a0 = random_matrix(n, seed=seed)
        a = a0.copy()
        piv = dgetrf(a, nb=nb)
        assert_palu(a0, a, piv)


class TestLuSolve:
    def test_solve_vector(self):
        a0 = random_matrix(12, seed=8)
        b = random_matrix(12, 1, seed=9).ravel()
        a = a0.copy()
        piv = dgetrf(a, nb=4)
        x = lu_solve(a, piv, b)
        assert np.allclose(a0 @ x, b, atol=1e-8)

    def test_solve_matrix_rhs(self):
        a0 = random_matrix(9, seed=10)
        b = random_matrix(9, 3, seed=11)
        a = a0.copy()
        piv = dgetrf(a, nb=3)
        x = lu_solve(a, piv, b)
        assert np.allclose(a0 @ x, b, atol=1e-8)

    def test_hpl_residual_passes(self):
        """The full HPL acceptance test on our own factorization."""
        n = 64
        a0 = random_matrix(n, seed=12)
        b = random_matrix(n, 1, seed=13).ravel()
        a = a0.copy()
        piv = dgetrf(a, nb=16)
        x = lu_solve(a, piv, b)
        assert hpl_residual(a0, x, b) < 16.0

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_solution_matches_numpy(self, n, seed):
        a0 = random_matrix(n, seed=seed)
        b = np.random.default_rng(seed + 1).standard_normal(n)
        a = a0.copy()
        piv = dgetrf(a, nb=5)
        x = lu_solve(a, piv, b)
        assert np.allclose(x, np.linalg.solve(a0, b), atol=1e-6)
