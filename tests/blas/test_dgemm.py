"""Unit and property tests for repro.blas.dgemm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.dgemm import dgemm, split_rows
from repro.blas.reference import naive_matmul


def rand(m, n, seed=0):
    return np.random.default_rng(seed).standard_normal((m, n))


class TestDgemm:
    def test_matches_naive(self):
        a, b = rand(5, 4, 1), rand(4, 6, 2)
        assert np.allclose(dgemm(1.0, a, b), naive_matmul(a, b))

    def test_alpha_scaling(self):
        a, b = rand(3, 3, 1), rand(3, 3, 2)
        assert np.allclose(dgemm(2.5, a, b), 2.5 * (a @ b))

    def test_beta_accumulate_inplace(self):
        a, b = rand(3, 4, 1), rand(4, 2, 2)
        c = rand(3, 2, 3)
        expected = a @ b + c
        out = dgemm(1.0, a, b, beta=1.0, c=c)
        assert out is c
        assert np.allclose(c, expected)

    def test_general_alpha_beta(self):
        a, b = rand(4, 4, 1), rand(4, 4, 2)
        c = rand(4, 4, 3)
        expected = 0.5 * (a @ b) + (-2.0) * c
        dgemm(0.5, a, b, beta=-2.0, c=c)
        assert np.allclose(c, expected)

    def test_beta_zero_overwrites(self):
        a, b = rand(2, 2, 1), rand(2, 2, 2)
        c = np.full((2, 2), np.nan)  # beta=0 must not read C
        # NaN * 0 would poison the result if beta were applied multiplicatively.
        dgemm(1.0, a, b, beta=0.0, c=c)
        assert np.allclose(c, a @ b)

    def test_beta_without_c_rejected(self):
        with pytest.raises(ValueError):
            dgemm(1.0, rand(2, 2), rand(2, 2), beta=1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dgemm(1.0, rand(2, 3), rand(4, 2))

    def test_wrong_c_shape_rejected(self):
        with pytest.raises(ValueError):
            dgemm(1.0, rand(2, 3), rand(3, 2), beta=1.0, c=np.zeros((3, 3)))

    def test_hpl_update_signature(self):
        """The trailing update C -= L @ U used by dgetrf."""
        l, u = rand(6, 2, 1), rand(2, 5, 2)
        c = rand(6, 5, 3)
        expected = c - l @ u
        dgemm(-1.0, l, u, beta=1.0, c=c)
        assert np.allclose(c, expected)

    @given(
        st.integers(1, 12), st.integers(1, 12), st.integers(1, 12),
        st.floats(-3, 3), st.floats(-3, 3), st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_numpy(self, m, k, n, alpha, beta, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        expected = alpha * (a @ b) + beta * c
        dgemm(alpha, a, b, beta=beta, c=c)
        assert np.allclose(c, expected, atol=1e-9)


class TestSplitRows:
    def test_paper_two_way_split(self):
        # Fig 3: M1 = M * GSplit, M2 = M * (1 - GSplit).
        m1, m2 = split_rows(1000, [0.889, 0.111])
        assert m1 + m2 == 1000
        assert m1 == 889

    def test_three_core_split(self):
        parts = split_rows(100, [1 / 3, 1 / 3, 1 / 3])
        assert sum(parts) == 100
        assert max(parts) - min(parts) <= 1

    def test_zero_fraction_gets_zero(self):
        assert split_rows(10, [1.0, 0.0]) == [10, 0]

    def test_zero_rows(self):
        assert split_rows(0, [0.5, 0.5]) == [0, 0]

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            split_rows(10, [1.2, -0.2])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            split_rows(10, [0.5, 0.2])

    @given(
        st.integers(0, 5000),
        st.lists(st.floats(0.001, 1.0), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sums_to_m_and_proportional(self, m, weights):
        total = sum(weights)
        fractions = [w / total for w in weights]
        parts = split_rows(m, fractions)
        assert sum(parts) == m
        assert all(p >= 0 for p in parts)
        for p, f in zip(parts, fractions):
            assert abs(p - f * m) < len(fractions) + 1
