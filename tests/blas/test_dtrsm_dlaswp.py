"""Unit and property tests for dtrsm and dlaswp."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.dlaswp import dlaswp, invert_permutation
from repro.blas.dtrsm import dtrsm
from repro.blas.reference import naive_lower_solve, naive_upper_solve


def well_conditioned_tri(n, uplo, unit_diag, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) * 0.3
    a = np.tril(a) if uplo == "lower" else np.triu(a)
    np.fill_diagonal(a, 1.0 if unit_diag else rng.uniform(1.0, 2.0, n) * np.sign(rng.standard_normal(n)))
    return a


class TestDtrsm:
    @pytest.mark.parametrize("unit_diag", [False, True])
    def test_lower_left_matches_naive(self, unit_diag):
        a = well_conditioned_tri(7, "lower", unit_diag, 1)
        b = np.random.default_rng(2).standard_normal((7, 3))
        expected = naive_lower_solve(a, b, unit_diag)
        dtrsm(a, b, side="left", uplo="lower", unit_diag=unit_diag, block=3)
        assert np.allclose(b, expected)

    @pytest.mark.parametrize("unit_diag", [False, True])
    def test_upper_left_matches_naive(self, unit_diag):
        a = well_conditioned_tri(7, "upper", unit_diag, 3)
        b = np.random.default_rng(4).standard_normal((7, 2))
        expected = naive_upper_solve(a, b, unit_diag)
        dtrsm(a, b, side="left", uplo="upper", unit_diag=unit_diag, block=3)
        assert np.allclose(b, expected)

    def test_right_upper(self):
        """X U = B: used when updating a row panel."""
        u = well_conditioned_tri(5, "upper", False, 5)
        b = np.random.default_rng(6).standard_normal((3, 5))
        x_expected = np.linalg.solve(u.T, b.T).T
        dtrsm(u, b, side="right", uplo="upper")
        assert np.allclose(b, x_expected)

    def test_right_lower(self):
        l = well_conditioned_tri(5, "lower", False, 7)
        b = np.random.default_rng(8).standard_normal((2, 5))
        x_expected = np.linalg.solve(l.T, b.T).T
        dtrsm(l, b, side="right", uplo="lower")
        assert np.allclose(b, x_expected)

    def test_solve_then_multiply_roundtrip(self):
        l = well_conditioned_tri(9, "lower", True, 9)
        b0 = np.random.default_rng(10).standard_normal((9, 4))
        b = b0.copy()
        dtrsm(l, b, side="left", uplo="lower", unit_diag=True, block=4)
        assert np.allclose(l @ b, b0)

    def test_empty_b(self):
        a = well_conditioned_tri(3, "lower", False, 1)
        b = np.zeros((3, 0))
        assert dtrsm(a, b).shape == (3, 0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            dtrsm(np.zeros((3, 4)), np.zeros((3, 2)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            dtrsm(np.eye(3), np.zeros((4, 2)))

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            dtrsm(np.eye(2), np.zeros((2, 2)), side="top")

    @given(st.integers(1, 20), st.integers(1, 5), st.integers(1, 8),
           st.booleans(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_blocked_equals_scipy(self, n, nrhs, block, unit_diag, seed):
        import scipy.linalg

        a = well_conditioned_tri(n, "lower", unit_diag, seed)
        b = np.random.default_rng(seed + 1).standard_normal((n, nrhs))
        expected = scipy.linalg.solve_triangular(a, b, lower=True, unit_diagonal=unit_diag)
        dtrsm(a, b, side="left", uplo="lower", unit_diag=unit_diag, block=block)
        assert np.allclose(b, expected, atol=1e-8)


class TestDlaswp:
    def test_identity_pivots_no_change(self):
        a = np.arange(12.0).reshape(4, 3)
        before = a.copy()
        dlaswp(a, np.array([0, 1, 2, 3]))
        assert np.array_equal(a, before)

    def test_single_swap(self):
        a = np.arange(6.0).reshape(3, 2)
        dlaswp(a, np.array([2]))  # swap rows 0 and 2
        assert a[0, 0] == 4.0 and a[2, 0] == 0.0

    def test_sequential_semantics(self):
        """Later swaps see the effect of earlier ones (LAPACK order)."""
        a = np.arange(3.0).reshape(3, 1)
        dlaswp(a, np.array([1, 2]))  # swap(0,1) then swap(1,2)
        assert a.ravel().tolist() == [1.0, 2.0, 0.0]

    def test_offset(self):
        a = np.arange(4.0).reshape(4, 1)
        dlaswp(a, np.array([3]), offset=2)  # swap rows 2 and 3
        assert a.ravel().tolist() == [0.0, 1.0, 3.0, 2.0]

    def test_out_of_range_pivot_rejected(self):
        with pytest.raises(ValueError):
            dlaswp(np.zeros((2, 2)), np.array([5]))

    def test_invert_permutation_roundtrip(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 4))
        piv = np.array([3, 1, 5, 4, 4, 5])
        swapped = dlaswp(a.copy(), piv)
        perm = invert_permutation(piv, 6)
        assert np.array_equal(swapped, a[perm])

    @given(st.integers(1, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_swaps_are_a_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        piv = np.array([rng.integers(i, n) for i in range(n)])
        a = np.arange(float(n)).reshape(n, 1)
        dlaswp(a, piv)
        assert sorted(a.ravel().tolist()) == list(range(n))
