#!/usr/bin/env python
"""Soak/churn harness for the async multi-tenant session runtime.

Submits, cancels, and resumes waves of mixed scenarios across named
tenants against one long-lived :class:`repro.session.AsyncSession`,
sampling the process's open-fd count and resident set as it goes.  The
pinned invariants — violations are printed and exit the process nonzero:

1. **One terminal state** — every submitted handle ends COMPLETED or
   CANCELLED exactly once (``terminal_transitions == 1``); nothing fails,
   nothing hangs, nothing double-fires.
2. **Accounting** — per tenant, ``submitted == completed + cancelled``
   after every wave (no lost or duplicated scenarios).
3. **Bounded completion skew** — in waves without cancellation, while
   every tenant still has backlog, round-robin granting keeps per-tenant
   grant counts within ``slots + 1`` of each other.
4. **Flat resources** — after a warmup window (first quarter of the run),
   the open-fd count never exceeds its warmup high-water mark plus a
   small allowance, and RSS stays within a bounded envelope of its
   warmup level.
5. **Resume is a replay** — a :func:`repro.session.run_sweep` journal,
   resumed, re-runs nothing: the journal file is byte-identical after the
   second invocation.

Usage::

    python tests/soak/churn.py --quick --report soak_report.json   # CI lane
    python tests/soak/churn.py --duration 120                      # full soak

``--quick`` is time-budgeted (a few seconds, serial execution) so the CI
lane and the pytest wrapper (``tests/soak/test_soak.py``) stay cheap; the
full run drives the real process pool for minutes and churns thousands of
scenarios.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

if __package__ in (None, ""):  # running as a script: find src/ ourselves
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.session import (  # noqa: E402
    AdmissionFull,
    AsyncSession,
    RunState,
    Scenario,
    SweepJournal,
    run_sweep,
)

#: Scenario mix the waves cycle through (every HPL-capable family).
SCHEDULERS = ("cpu", "adaptive", "acmlg_both", "static")

#: Problem sizes small enough that one run is ~10-20 ms.
BASE_N = 8000

#: Post-warmup fd allowance over the warmup high-water mark.
FD_ALLOWANCE = 8

#: Post-warmup RSS envelope: warmup high-water mark times this, plus slack.
RSS_FACTOR = 1.35
RSS_SLACK_KB = 64 * 1024

#: Fairness bound: grant-count skew among backlogged tenants (invariant 3).
def fair_skew_bound(slots: int) -> int:
    return slots + 1


def fd_count() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def rss_kb() -> Optional[int]:
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def wave_scenarios(wave: int, count: int) -> list[Scenario]:
    """A deterministic mixed batch for one tenant in one wave."""
    return [
        Scenario(
            scheduler=SCHEDULERS[(wave + k) % len(SCHEDULERS)],
            n=BASE_N + 100 * ((wave * 7 + k) % 12),
            seed=1 + (k % 5),
        )
        for k in range(count)
    ]


class Violations:
    def __init__(self) -> None:
        self.items: list[str] = []

    def check(self, ok: bool, message: str) -> None:
        if not ok:
            self.items.append(message)
            print(f"VIOLATION: {message}", file=sys.stderr)


async def run_wave(
    session: AsyncSession,
    tenants: list[str],
    wave: int,
    per_tenant: int,
    *,
    cancel_every: int,
    violations: Violations,
) -> dict[str, Any]:
    """One churn wave: interleaved submits, optional cancels, full drain."""
    handles: dict[str, list] = {t: [] for t in tenants}
    batches = {t: wave_scenarios(wave, per_tenant) for t in tenants}
    grant_base = {t: session.scheduler.granted_count(t) for t in tenants}

    for k in range(per_tenant):
        for tenant in tenants:
            scenario = batches[tenant][k]
            while True:
                try:
                    handles[tenant].append(
                        session.submit(scenario, tenant=tenant)
                    )
                    break
                except AdmissionFull:
                    await asyncio.sleep(0.001)  # backpressure: drain a bit

    cancels = {t: 0 for t in tenants}
    if cancel_every:
        for tenant in tenants:
            for handle in handles[tenant][::cancel_every]:
                if handle.cancel():
                    cancels[tenant] += 1

    # Drain while sampling fairness (cancel-free waves only: cancellation
    # empties queues asymmetrically, which is allowed to skew grants).
    max_skew = 0
    while session.live_jobs:
        await asyncio.sleep(0)
        if not cancel_every and all(
            session.scheduler.queued_count(t) > 0 for t in tenants
        ):
            deltas = [
                session.scheduler.granted_count(t) - grant_base[t]
                for t in tenants
            ]
            max_skew = max(max_skew, max(deltas) - min(deltas))
    await session.drain()

    stats = {"completed": 0, "cancelled": 0, "failed": 0, "max_fair_skew": max_skew}
    for tenant in tenants:
        completed = cancelled = 0
        for handle in handles[tenant]:
            violations.check(
                handle.state.terminal and handle.terminal_transitions == 1,
                f"wave {wave} {handle.label}: terminal_transitions="
                f"{handle.terminal_transitions} state={handle.state.value}",
            )
            if handle.state is RunState.COMPLETED:
                completed += 1
            elif handle.state is RunState.CANCELLED:
                cancelled += 1
            else:
                stats["failed"] += 1
                violations.check(
                    False,
                    f"wave {wave} {handle.label}: unexpected terminal state "
                    f"{handle.state.value}: {handle.exception()!r}",
                )
        violations.check(
            completed + cancelled == per_tenant,
            f"wave {wave} tenant {tenant}: submitted {per_tenant} != "
            f"completed {completed} + cancelled {cancelled}",
        )
        stats["completed"] += completed
        stats["cancelled"] += cancelled
    if not cancel_every:
        violations.check(
            max_skew <= fair_skew_bound(session.pool.size),
            f"wave {wave}: fair-share grant skew {max_skew} exceeds bound "
            f"{fair_skew_bound(session.pool.size)}",
        )
    return stats


def resume_cycle(
    spool: Path, wave: int, *, serial: bool, violations: Violations
) -> int:
    """Checkpoint/resume churn: sweep, then resume; resume must replay."""
    journal = spool / f"resume-{wave}.jsonl"
    sweep = [Scenario(scheduler="cpu", n=BASE_N + 100 * i) for i in range(6)]
    rows = run_sweep(sweep, journal_path=journal, serial=serial)
    violations.check(
        len(rows) == len(sweep),
        f"wave {wave}: resume sweep returned {len(rows)} rows",
    )
    before = journal.read_bytes()
    again = run_sweep(sweep, journal_path=journal, serial=serial)
    violations.check(
        journal.read_bytes() == before,
        f"wave {wave}: resume re-ran journaled scenarios",
    )
    violations.check(
        [r["gflops"] for r in again] == [r["gflops"] for r in rows],
        f"wave {wave}: resumed rows differ from the original run's",
    )
    journal.unlink()
    return len(sweep)


async def churn(args: argparse.Namespace, violations: Violations) -> dict[str, Any]:
    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    samples: list[dict[str, Any]] = []
    totals = {"submitted": 0, "completed": 0, "cancelled": 0, "waves": 0,
              "resumed_scenarios": 0, "max_fair_skew": 0}
    started = time.monotonic()
    warmup_until = started + args.duration * 0.25

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as spool:
        async with AsyncSession(
            slots=args.slots, serial=args.serial or None
        ) as session:
            wave = 0
            while (
                time.monotonic() - started < args.duration or wave < 2
            ):
                cancel_every = 3 if wave % 2 == 1 else 0
                stats = await run_wave(
                    session,
                    tenants,
                    wave,
                    args.wave_size,
                    cancel_every=cancel_every,
                    violations=violations,
                )
                if wave % 3 == 2:
                    totals["resumed_scenarios"] += await asyncio.to_thread(
                        resume_cycle,
                        Path(spool),
                        wave,
                        serial=bool(args.serial),
                        violations=violations,
                    )
                totals["submitted"] += args.wave_size * len(tenants)
                totals["completed"] += stats["completed"]
                totals["cancelled"] += stats["cancelled"]
                totals["max_fair_skew"] = max(
                    totals["max_fair_skew"], stats["max_fair_skew"]
                )
                totals["waves"] += 1
                samples.append(
                    {
                        "wall": round(time.monotonic() - started, 3),
                        "wave": wave,
                        "warmup": time.monotonic() < warmup_until,
                        "fd": fd_count(),
                        "rss_kb": rss_kb(),
                        "completed": stats["completed"],
                        "cancelled": stats["cancelled"],
                    }
                )
                wave += 1

    # Resource flatness (invariant 4), judged over the sample trail.
    with_fd = [s for s in samples if s["fd"] is not None]
    warm = [s for s in with_fd if s["warmup"]] or with_fd[:1]
    later = [s for s in with_fd if not s["warmup"]]
    resources: dict[str, Any] = {"supported": bool(with_fd)}
    if with_fd and later:
        fd_mark = max(s["fd"] for s in warm)
        fd_peak = max(s["fd"] for s in later)
        resources.update(fd_warmup_mark=fd_mark, fd_post_warmup_peak=fd_peak)
        violations.check(
            fd_peak <= fd_mark + FD_ALLOWANCE,
            f"fd table grew after warmup: {fd_mark} -> {fd_peak}",
        )
        rss_marks = [s["rss_kb"] for s in warm if s["rss_kb"]]
        rss_peaks = [s["rss_kb"] for s in later if s["rss_kb"]]
        if rss_marks and rss_peaks:
            rss_mark, rss_peak = max(rss_marks), max(rss_peaks)
            resources.update(
                rss_warmup_mark_kb=rss_mark, rss_post_warmup_peak_kb=rss_peak
            )
            violations.check(
                rss_peak <= rss_mark * RSS_FACTOR + RSS_SLACK_KB,
                f"RSS grew after warmup: {rss_mark} kB -> {rss_peak} kB",
            )

    return {
        "config": {
            "quick": args.quick,
            "duration": args.duration,
            "tenants": args.tenants,
            "wave_size": args.wave_size,
            "slots": args.slots,
            "serial": bool(args.serial),
        },
        "totals": totals,
        "resources": resources,
        "samples": samples,
        "violations": violations.items,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tests/soak/churn.py",
        description="Churn the async session runtime and pin its invariants.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="time-budgeted CI mode: a few seconds, serial execution",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="target wall-clock budget (default: 6 with --quick, 120 without)",
    )
    parser.add_argument("--tenants", type=int, default=3, metavar="N")
    parser.add_argument(
        "--wave-size", type=int, default=None, metavar="N",
        help="scenarios per tenant per wave (default: 25 quick, 50 full)",
    )
    parser.add_argument(
        "--slots", type=int, default=None, metavar="N",
        help="worker pool size (default: all cores; ignored with --serial)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="inline execution instead of the process pool (implied by --quick)",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE.json",
        help="write the sample trail and invariant results as JSON",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.serial = True
    if args.duration is None:
        args.duration = 6.0 if args.quick else 120.0
    if args.wave_size is None:
        args.wave_size = 25 if args.quick else 50
    if args.tenants < 2:
        print("--tenants must be >= 2 (fairness needs neighbors)", file=sys.stderr)
        return 2

    violations = Violations()
    report = asyncio.run(churn(args, violations))

    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
    totals = report["totals"]
    print(
        f"soak: {totals['waves']} waves, {totals['submitted']} submitted, "
        f"{totals['completed']} completed, {totals['cancelled']} cancelled, "
        f"{totals['resumed_scenarios']} resumed, "
        f"max fair skew {totals['max_fair_skew']}, "
        f"{len(report['violations'])} violations"
    )
    return 1 if report["violations"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
