"""In-process pytest wrapper around the churn harness's --quick mode.

Keeps the soak invariants under the ordinary test runner (a few seconds,
serial execution); the CI ``soak`` lane runs ``churn.py`` standalone with
a longer budget and uploads the report as an artifact.  Deselect with
``-m 'not soak'`` when iterating.
"""

import json

import pytest

from tests.soak import churn

pytestmark = pytest.mark.soak


class TestQuickChurn:
    def test_quick_churn_holds_every_invariant(self, tmp_path):
        report_path = tmp_path / "soak_report.json"
        exit_code = churn.main(
            ["--quick", "--duration", "4", "--report", str(report_path)]
        )
        report = json.loads(report_path.read_text())
        assert report["violations"] == [], report["violations"]
        assert exit_code == 0

        totals = report["totals"]
        assert totals["waves"] >= 2
        assert totals["submitted"] >= 100, "churn volume collapsed"
        assert totals["completed"] + totals["cancelled"] == totals["submitted"]
        assert totals["resumed_scenarios"] > 0, "resume churn never ran"

        resources = report["resources"]
        if resources["supported"]:
            assert "fd_warmup_mark" in resources
            for sample in report["samples"]:
                assert sample["fd"] is not None

    def test_violations_exit_nonzero(self, tmp_path, monkeypatch):
        # Force a violation to prove the harness actually fails loudly
        # instead of reporting green no matter what.
        monkeypatch.setattr(churn, "fair_skew_bound", lambda slots: -1)
        exit_code = churn.main(["--quick", "--duration", "1"])
        assert exit_code == 1


class TestHarnessPieces:
    def test_wave_scenarios_are_deterministic_and_mixed(self):
        first = churn.wave_scenarios(3, 12)
        again = churn.wave_scenarios(3, 12)
        assert first == again
        assert len({s.scheduler_name for s in first}) == len(churn.SCHEDULERS)
        assert len({s.n for s in first}) > 1

    def test_parser_rejects_single_tenant(self, capsys):
        assert churn.main(["--quick", "--tenants", "1"]) == 2
