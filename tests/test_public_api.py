"""The top-level public API: everything advertised must exist and work."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.sim.gantt",
            "repro.machine",
            "repro.machine.dual",
            "repro.blas",
            "repro.model",
            "repro.core",
            "repro.core.multi_device",
            "repro.core.persistence",
            "repro.mpi",
            "repro.hpl",
            "repro.bench",
            "repro.bench.cli",
        ],
    )
    def test_submodules_importable(self, module):
        importlib.import_module(module)

    def test_docstring_quickstart_runs(self):
        """The usage example in the package docstring must actually work."""
        from repro import AdaptiveMapper, ComputeElement, HybridDgemm, Simulator, tianhe1_element

        sim = Simulator()
        element = ComputeElement(sim, tianhe1_element())
        mapper = AdaptiveMapper(
            element.initial_gsplit, n_cores=3, max_workload=2.0 * 20000**3
        )
        engine = HybridDgemm(element, mapper, pipelined=True)
        result = engine.run_to_completion(4096, 4096, 4096)
        assert result.gflops > 0
        assert 0 <= result.gsplit <= 1

    def test_readme_cluster_example_runs(self):
        from repro import Cluster, ProcessGrid, Scenario, Session, tianhe1_cluster

        cluster = Cluster(tianhe1_cluster(cabinets=1))
        result = Session(
            Scenario(
                scheduler="acmlg_both", n=80_000, cluster=cluster,
                grid=ProcessGrid(2, 2),
            )
        ).run()
        assert result.tflops > 0.3
