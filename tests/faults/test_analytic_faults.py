"""Fault injection through the analytic Linpack stepper (Session API)."""

import pytest

from repro.faults import FaultSpec, GpuDropout, GpuThrottle, PcieFaultSpec
from repro.hpl.driver import Configuration
from repro.machine.variability import NO_VARIABILITY
from repro.session import Scenario, Session, run
from tests.conftest import small_scenario as scenario

N = 12000
SEED = 11


class TestDeterminism:
    def test_same_spec_and_seed_is_bit_identical(self):
        faults = FaultSpec(
            throttles=(GpuThrottle(at=10.0, clock_factor=0.6),),
            pcie=PcieFaultSpec(fail_probability=0.2, at=5.0),
        )
        a = run(scenario(faults=faults, collect_steps=True))
        b = run(scenario(faults=faults, collect_steps=True))
        assert a.gflops == b.gflops
        assert a.elapsed == b.elapsed
        assert [s.step_time for s in a.analytic.steps] == [
            s.step_time for s in b.analytic.steps
        ]

    def test_clean_run_is_unaffected_by_empty_spec(self):
        clean = run(scenario())
        empty = run(scenario(faults=FaultSpec()))
        assert empty.gflops == clean.gflops
        assert empty.degraded is None


class TestThrottle:
    def test_throttle_slows_the_run_and_marks_it_degraded(self):
        clean = run(scenario(configuration=Configuration.STATIC_PEAK))
        faulted = run(
            scenario(
                configuration=Configuration.STATIC_PEAK,
                faults=FaultSpec(throttles=(GpuThrottle(at=0.0, clock_factor=0.55),)),
            )
        )
        assert faulted.elapsed > clean.elapsed
        assert faulted.degraded.gpu_throttled
        assert [e.kind for e in faulted.degraded.events] == ["gpu_throttle"]

    def test_only_adaptive_recovers_the_clock(self):
        """Adaptive sheds load below the threshold and un-throttles; the
        static peak-trained split keeps feeding the hot GPU and never does."""

        def kinds(configuration):
            clean = run(scenario(configuration=configuration))
            throttle = GpuThrottle(
                at=0.3 * clean.elapsed,
                clock_factor=0.55,
                shed_threshold=0.86,
                recovery_s=0.15 * clean.elapsed,
            )
            faulted = run(
                scenario(configuration=configuration, faults=FaultSpec(throttles=(throttle,)))
            )
            return [e.kind for e in faulted.degraded.events]

        assert "gpu_clock_restored" in kinds(Configuration.ACMLG_BOTH)
        assert "gpu_clock_restored" not in kinds(Configuration.STATIC_PEAK)


class TestDropout:
    def test_adaptive_falls_back_to_cpu_only_rates(self):
        """After a GPU loss the adaptive mapping must match the cpu_only
        mapping's per-step update times exactly (the cpu_only_dgemm path)."""
        dropped = run(
            scenario(
                variability=NO_VARIABILITY,
                collect_steps=True,
                faults=FaultSpec(dropouts=(GpuDropout(at=0.0),)),
            )
        )
        cpu_only = run(
            scenario(
                variability=NO_VARIABILITY,
                collect_steps=True,
                overrides={"mapping": "cpu_only"},
            )
        )
        for a, b in zip(dropped.analytic.steps, cpu_only.analytic.steps):
            assert a.update_time == pytest.approx(b.update_time, rel=1e-12)
        assert dropped.degraded.gpu_lost

    def test_non_adaptive_rides_the_failsafe_rate(self):
        """A mapping that cannot react keeps offloading into the dead device
        and lands far below the adaptive fallback."""
        faults = FaultSpec(dropouts=(GpuDropout(at=0.0),))
        adaptive = run(scenario(variability=NO_VARIABILITY, faults=faults))
        static = run(
            scenario(
                configuration=Configuration.STATIC_PEAK,
                variability=NO_VARIABILITY,
                faults=faults,
            )
        )
        assert static.gflops < 0.5 * adaptive.gflops


class TestPcieInflation:
    def test_transfer_inflation_slows_the_analytic_run(self):
        clean = run(scenario(configuration=Configuration.ACMLG_PIPE))
        faulted = run(
            scenario(
                configuration=Configuration.ACMLG_PIPE,
                faults=FaultSpec(pcie=PcieFaultSpec(fail_probability=0.5)),
            )
        )
        assert faulted.elapsed > clean.elapsed
        assert faulted.degraded.pcie_degraded

    def test_window_outside_the_run_changes_nothing(self):
        clean = run(scenario())
        faulted = run(
            scenario(faults=FaultSpec(pcie=PcieFaultSpec(fail_probability=0.5, at=1e9)))
        )
        assert faulted.gflops == clean.gflops
