"""Smoke test for the ``repro.bench faults`` scenario at a tiny size."""

from repro.bench.faults_bench import faults_study


def test_faults_study_smoke():
    data = faults_study(n=9000, seed=11)
    assert data.series["ACMLG+both"]
    assert data.series["Static"]
    summary = data.summary
    assert isinstance(
        summary["adaptive recovered >= 90% of pre-throttle rate"], bool
    )
    assert isinstance(
        summary["static recovered >= 90% of pre-throttle rate"], bool
    )
    assert summary["dropout: max per-step update gap vs cpu_only (s)"] == 0.0
    assert summary["pcie retry storm: transfers retried (DES pipeline)"] >= 0
    assert "ACMLG+both: fault events" in summary
    # The study owns its telemetry when none is ambient, so the rendered
    # report carries the fault counters.
    text = data.render()
    assert "faults.events" in text
    assert "faults.pcie_retries" in text
