"""Unit tests for the fault spec validation and the injector state machine."""

import numpy as np
import pytest

from repro.faults import (
    NO_FAULTS,
    FaultInjector,
    FaultSpec,
    GpuDropout,
    GpuThrottle,
    PcieFaultSpec,
    Straggler,
)


class TestSpecValidation:
    def test_throttle_rejects_bad_clock_factor(self):
        with pytest.raises(ValueError):
            GpuThrottle(at=1.0, clock_factor=0.0)
        with pytest.raises(ValueError):
            GpuThrottle(at=1.0, clock_factor=1.0)

    def test_throttle_rejects_negative_at_and_zero_recovery(self):
        with pytest.raises(ValueError):
            GpuThrottle(at=-1.0)
        with pytest.raises(ValueError):
            GpuThrottle(at=0.0, recovery_s=0.0)

    def test_straggler_rejects_inverted_window_and_unknown_side(self):
        with pytest.raises(ValueError):
            Straggler(at=5.0, until=5.0)
        with pytest.raises(ValueError):
            Straggler(at=0.0, side="dimm")

    def test_pcie_rejects_certain_failure(self):
        with pytest.raises(ValueError):
            PcieFaultSpec(fail_probability=1.0)

    def test_pcie_window_and_inflation(self):
        pcie = PcieFaultSpec(fail_probability=0.5, at=2.0, until=4.0)
        assert not pcie.active(1.9)
        assert pcie.active(2.0)
        assert pcie.active(3.999)
        assert not pcie.active(4.0)
        assert pcie.expected_inflation() == pytest.approx(2.0)

    def test_spec_truthiness_and_max_element(self):
        assert not NO_FAULTS
        assert not FaultSpec()
        assert FaultSpec(pcie=PcieFaultSpec())
        spec = FaultSpec(
            throttles=(GpuThrottle(at=0.0),),  # element=None does not count
            dropouts=(GpuDropout(at=0.0, element=3),),
            stragglers=(Straggler(at=0.0, element=1),),
        )
        assert spec
        assert spec.max_element() == 3
        assert NO_FAULTS.max_element() == -1


class TestInjectorSchedule:
    def test_rejects_spec_naming_missing_element(self):
        spec = FaultSpec(dropouts=(GpuDropout(at=0.0, element=4),))
        with pytest.raises(ValueError, match="element 4"):
            FaultInjector(spec, n_elements=2)

    def test_throttle_fires_at_trigger_time(self):
        injector = FaultInjector(
            FaultSpec(throttles=(GpuThrottle(at=10.0, clock_factor=0.5),)),
            n_elements=2,
        )
        injector.advance(9.9)
        assert np.allclose(injector.gpu_factor(), 1.0)
        injector.advance(10.0)
        assert np.allclose(injector.gpu_factor(), 0.5)
        assert [e.kind for e in injector.events] == ["gpu_throttle"]

    def test_dropout_kills_one_element(self):
        injector = FaultInjector(
            FaultSpec(dropouts=(GpuDropout(at=5.0, element=1, failsafe_factor=0.02),)),
            n_elements=3,
        )
        injector.advance(6.0)
        assert list(injector.gpu_alive()) == [True, False, True]
        assert injector.gpu_factor()[1] == pytest.approx(0.02)
        assert injector.gpu_factor()[0] == 1.0
        assert injector.degraded_mode().gpu_lost

    def test_straggler_window_opens_and_closes(self):
        injector = FaultInjector(
            FaultSpec(stragglers=(Straggler(at=2.0, until=8.0, element=0, factor=0.5, side="both"),)),
            n_elements=1,
        )
        injector.advance(1.0)
        assert injector.cpu_factor()[0] == 1.0
        injector.advance(3.0)
        assert injector.cpu_factor()[0] == pytest.approx(0.5)
        assert injector.gpu_factor()[0] == pytest.approx(0.5)
        injector.advance(8.0)
        assert injector.cpu_factor()[0] == 1.0
        assert [e.kind for e in injector.events] == ["straggler_on", "straggler_off"]

    def test_cpu_side_straggler_leaves_gpu_alone(self):
        injector = FaultInjector(
            FaultSpec(stragglers=(Straggler(at=0.0, element=0, factor=0.25, side="cpu"),)),
            n_elements=1,
        )
        injector.advance(1.0)
        assert injector.cpu_factor()[0] == pytest.approx(0.25)
        assert injector.gpu_factor()[0] == 1.0


class TestThrottleRecovery:
    def spec(self, recovery_s=4.0):
        return FaultSpec(
            throttles=(
                GpuThrottle(at=0.0, clock_factor=0.5, shed_threshold=0.8, recovery_s=recovery_s),
            )
        )

    def test_shed_load_recovers_the_clock(self):
        injector = FaultInjector(self.spec(), n_elements=1)
        injector.advance(0.0)
        t = 0.0
        while injector.gpu_factor()[0] < 1.0 and t < 20.0:
            t += 1.0
            injector.advance(t)
            injector.note_load(np.array([0.5]), t)  # below shed_threshold
        assert injector.gpu_factor()[0] == 1.0
        assert "gpu_clock_restored" in [e.kind for e in injector.events]

    def test_full_load_never_recovers(self):
        injector = FaultInjector(self.spec(), n_elements=1)
        injector.advance(0.0)
        for t in range(1, 30):
            injector.advance(float(t))
            injector.note_load(np.array([0.889]), float(t))  # above shed_threshold
        assert injector.gpu_factor()[0] == pytest.approx(0.5)

    def test_cooling_credit_accumulates_non_consecutively(self):
        injector = FaultInjector(self.spec(recovery_s=3.0), n_elements=1)
        injector.advance(0.0)
        loads = [0.5, 0.9, 0.5, 0.9, 0.5, 0.5]  # 4 shed seconds, split up
        for t, load in enumerate(loads, start=1):
            injector.advance(float(t))
            injector.note_load(np.array([load]), float(t))
        assert injector.gpu_factor()[0] == 1.0

    def test_permanent_throttle_ignores_load(self):
        injector = FaultInjector(
            FaultSpec(throttles=(GpuThrottle(at=0.0, clock_factor=0.5),)), n_elements=1
        )
        injector.advance(0.0)
        for t in range(1, 10):
            injector.advance(float(t))
            injector.note_load(np.array([0.0]), float(t))
        assert injector.gpu_factor()[0] == pytest.approx(0.5)


class TestPcieDraws:
    def test_same_seed_same_failure_sequence(self):
        spec = FaultSpec(pcie=PcieFaultSpec(fail_probability=0.3))
        draws = []
        for _ in range(2):
            injector = FaultInjector(spec, n_elements=1, seed=42)
            draws.append([injector.pcie_transfer_fails(float(t)) for t in range(200)])
        assert draws[0] == draws[1]
        assert any(draws[0])
        assert not all(draws[0])

    def test_no_pcie_spec_never_fails(self):
        injector = FaultInjector(NO_FAULTS, n_elements=1, seed=1)
        assert not any(injector.pcie_transfer_fails(float(t)) for t in range(100))

    def test_window_gates_failures(self):
        spec = FaultSpec(pcie=PcieFaultSpec(fail_probability=0.9, at=10.0, until=20.0))
        injector = FaultInjector(spec, n_elements=1, seed=0)
        assert not injector.pcie_transfer_fails(5.0)
        assert not injector.pcie_transfer_fails(25.0)


class TestDegradedMode:
    def test_clean_injector_reports_none(self):
        injector = FaultInjector(NO_FAULTS, n_elements=2)
        injector.advance(100.0)
        assert injector.degraded_mode() is None

    def test_describe_lists_what_happened(self):
        injector = FaultInjector(
            FaultSpec(dropouts=(GpuDropout(at=0.0),)), n_elements=1
        )
        injector.advance(1.0)
        injector.record_pcie_retry(2.0)
        mode = injector.degraded_mode()
        assert mode
        assert "gpu-lost" in mode.describe()
        assert "pcie-retries=1" in mode.describe()
