"""PCIe fault retry/backoff behaviour of the DES pipeline executors."""

import pytest

from repro.core.pipeline import SoftwarePipeline, SyncExecutor
from repro.core.taskqueue import build_task_queue
from repro.faults import FaultInjector, FaultSpec, PcieFaultSpec, PcieTransferError
from tests.conftest import build_element as make_element

RATE = 150e9


def run_with_faults(executor_cls, pcie=None, seed=3, n=16384):
    element = make_element()
    injector = None
    if pcie is not None:
        injector = FaultInjector(
            FaultSpec(pcie=pcie), n_elements=1, seed=seed, telemetry=None
        )
    executor = executor_cls(element, jitter=False, fault_injector=injector)
    queue = build_task_queue(n, n, 1216, beta_nonzero=False, gpu_memory_bytes=1e9)
    sim = element.sim
    return sim.run(until=sim.process(executor.execute(queue, RATE)))


@pytest.mark.parametrize("executor_cls", [SoftwarePipeline, SyncExecutor])
class TestRetries:
    def test_clean_run_has_no_fault_state(self, executor_cls):
        result = run_with_faults(executor_cls)
        assert result.retries == 0
        assert result.degraded is None

    def test_faulty_window_produces_retries(self, executor_cls):
        result = run_with_faults(
            executor_cls, PcieFaultSpec(fail_probability=0.2, max_retries=20)
        )
        assert result.retries > 0
        assert result.degraded.pcie_retries == result.retries
        clean = run_with_faults(executor_cls)
        assert result.duration > clean.duration

    def test_retry_sequence_is_seed_deterministic(self, executor_cls):
        pcie = PcieFaultSpec(fail_probability=0.25, max_retries=20)
        a = run_with_faults(executor_cls, pcie, seed=9)
        b = run_with_faults(executor_cls, pcie, seed=9)
        assert a.retries == b.retries
        assert a.duration == b.duration

    def test_exhausted_retries_raise(self, executor_cls):
        with pytest.raises(PcieTransferError, match="after 2 retries"):
            run_with_faults(
                executor_cls,
                PcieFaultSpec(fail_probability=0.999, max_retries=2),
                seed=1,
            )


def test_backoff_delays_accumulate():
    """Each retry waits backoff_s * multiplier**attempt on the virtual clock."""
    slow = run_with_faults(
        SyncExecutor,
        PcieFaultSpec(fail_probability=0.2, max_retries=20, backoff_s=0.05),
        seed=5,
    )
    fast = run_with_faults(
        SyncExecutor,
        PcieFaultSpec(fail_probability=0.2, max_retries=20, backoff_s=1e-6),
        seed=5,
    )
    assert slow.retries == fast.retries  # same seeded failure draw sequence
    assert slow.duration > fast.duration
