"""Fast-path tests for the what-if and scaling-study generators."""

import pytest

from repro.bench.scaling_studies import run_energy_ledger, strong_scaling
from repro.bench.whatif import clock_sweep, endgame_fallback_study


class TestClockSweep:
    def test_small_sweep(self):
        data = clock_sweep(clocks_mhz=(575.0, 750.0), n=120_000)
        tflops = dict(data.series["TFLOPS"])
        assert tflops[750.0] > tflops[575.0]
        assert data.summary["fastest thermally-stable clock"] == 575.0
        assert data.summary["max stable clock (MHz)"] == pytest.approx(652.8, abs=1.0)

    def test_temperatures_reported(self):
        data = clock_sweep(clocks_mhz=(575.0,), n=120_000)
        temps = dict(data.series["die temp C"])
        assert temps[575.0] == pytest.approx(92.0)

    def test_power_scales_with_clock(self):
        data = clock_sweep(clocks_mhz=(575.0, 750.0), n=120_000)
        power = dict(data.series["power kW"])
        assert power[750.0] > power[575.0]


class TestEndgameFallback:
    def test_never_hurts(self):
        data = endgame_fallback_study(n=120_000)
        assert data.summary["improvement"] >= 0.0
        assert len(data.series["baseline"]) > 5
        assert len(data.series["with endgame fallback"]) > 5


class TestStrongScaling:
    def test_two_point(self):
        data = strong_scaling(n=280_000, cabinets=(1, 4))
        tflops = dict(data.series["TFLOPS"])
        assert tflops[4] > tflops[1]
        eff = dict(data.series["parallel efficiency %"])
        assert eff[1] == pytest.approx(100.0)
        assert eff[4] < 100.0


class TestEnergyLedger:
    @pytest.mark.slow
    def test_consistency(self):
        data = run_energy_ledger()
        assert data.summary["run energy (kWh)"] == pytest.approx(
            data.summary["run wall time (h)"] * 80 * 18.5, rel=1e-6
        )
        assert data.summary["Qilin training energy (kWh, paper 2960)"] == pytest.approx(2960.0)
