"""Tests for the repro.bench command line and export formats."""

import json

import pytest

from repro.bench.cli import FIGURES, TEXT_ARTIFACTS, build_parser, main
from repro.bench.report import SeriesData


class TestExports:
    def make(self):
        data = SeriesData(title="t", x_label="N", y_label="G")
        data.add_point("s1", 1, 2.0)
        data.add_point("s1", 3, 4.0)
        data.add_point("s2", 1, 9.0)
        data.summary["anchor"] = 1.5
        return data

    def test_csv_layout(self):
        lines = self.make().to_csv().strip().splitlines()
        assert lines[0] == "N,s1,s2"
        assert lines[1] == "1,2.0,9.0"
        assert lines[2] == "3,4.0,"

    def test_json_roundtrip(self):
        doc = json.loads(self.make().to_json())
        assert doc["title"] == "t"
        assert doc["series"]["s1"] == [[1, 2.0], [3, 4.0]]
        assert doc["summary"]["anchor"] == 1.5


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in list(FIGURES) + list(TEXT_ARTIFACTS):
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig8" in capsys.readouterr().out

    def test_worked_example_text(self, capsys):
        assert main(["worked-example"]) == 0
        out = capsys.readouterr().out
        assert "5.28" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "T0 T1 T3 T2" in capsys.readouterr().out

    def test_text_artifact_rejects_csv(self, capsys):
        assert main(["table1", "--format", "csv"]) == 2

    def test_quick_fig10_json(self, capsys):
        assert main(["fig10", "--quick", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "stored GSplit" in doc["series"]

    def test_quick_fig12_csv_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig12.csv"
        assert main(["fig12", "--quick", "--out", str(out_file), "--format", "csv"]) == 0
        content = out_file.read_text()
        assert content.startswith("cabinets,")

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestTelemetryFlags:
    def test_trace_out_is_valid_chrome_trace(self, tmp_path):
        trace = tmp_path / "trace.json"
        args = ["fig10", "--quick", "--trace-out", str(trace), "--out", str(tmp_path / "o.txt")]
        assert main(args) == 0
        events = json.loads(trace.read_text())
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        assert any(e["ph"] == "X" for e in events)
        # pid/tid metadata present so Perfetto shows real track names.
        assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)
        for event in events:
            assert "pid" in event and "tid" in event

    def test_metrics_out_and_report_section(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(["fig10", "--quick", "--metrics-out", str(metrics)]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["adaptive.updates"]["kind"] == "counter"
        assert "pipeline.stage_occupancy" in doc
        assert "telemetry:" in capsys.readouterr().out

    def test_json_format_carries_telemetry(self, tmp_path, capsys):
        args = ["fig10", "--quick", "--format", "json", "--metrics-out", str(tmp_path / "m.json")]
        assert main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(key.startswith("adaptive.updates") for key in doc["telemetry"])

    def test_without_flags_no_telemetry_section(self, capsys):
        assert main(["fig10", "--quick"]) == 0
        assert "telemetry:" not in capsys.readouterr().out
