"""Fast-path tests for every figure generator (reduced domains)."""

import pytest

from repro.bench.cabinet import fig11_adaptive_vs_qilin, grid_for, problem_size_for
from repro.bench.dgemm_sweep import fig8_dgemm_sweep, run_dgemm_config
from repro.bench.linpack_sweep import fig9_linpack_sweep, fig10_split_ratio
from repro.bench.pipeline_trace import table1_trace, worked_example
from repro.bench.scaling import (
    fig12_cabinet_scaling,
    fig13_progress,
    problem_size_for_cabinets,
)
from repro.machine.variability import NO_VARIABILITY


class TestFig8Generator:
    def test_reduced_sweep_structure(self):
        data = fig8_dgemm_sweep(sizes=(4096, 10240), configs=("acmlg", "acmlg_both"))
        assert set(data.series) == {"ACMLG", "ACMLG+both"}
        assert data.xs() == [4096, 10240]
        assert "combined gain avg, N>8192 (paper +22.19%)" in data.summary

    def test_run_single_config(self):
        gflops = run_dgemm_config("acmlg_both", 4096, warm_runs=1)
        assert 50 < gflops < 280

    def test_cpu_config_flat(self):
        small = run_dgemm_config("cpu", 2048)
        large = run_dgemm_config("cpu", 8192)
        assert small == pytest.approx(large, rel=0.02)


class TestFig9Generator:
    def test_reduced_sweep(self):
        data = fig9_linpack_sweep(sizes=(8000, 16000), configs=("cpu", "acmlg_both"))
        assert set(data.series) == {"CPU", "ACMLG+both"}
        both = dict(data.series["ACMLG+both"])
        assert both[16000] > both[8000]


class TestFig10Generator:
    def test_small_run(self):
        data = fig10_split_ratio(n=12000, variability=NO_VARIABILITY)
        stored = data.series["stored GSplit"]
        assert len(stored) == 12000 // 1216
        assert all(0 <= v <= 1 for _, v in stored)
        assert data.summary["initial GSplit (paper 0.889)"] == pytest.approx(0.889, abs=0.002)

    def test_final_bins_subset_of_history(self):
        data = fig10_split_ratio(n=12000, variability=NO_VARIABILITY)
        assert len(data.series["final per-bin value"]) <= len(data.series["stored GSplit"])


class TestFig11Generator:
    def test_grid_for_shapes(self):
        assert (grid_for(64).nprow, grid_for(64).npcol) == (8, 8)
        assert (grid_for(2).nprow, grid_for(2).npcol) == (1, 2)
        assert (grid_for(12).nprow, grid_for(12).npcol) == (3, 4)
        assert grid_for(7).size == 7

    def test_problem_size_scales_with_sqrt(self):
        assert problem_size_for(4) == 2 * problem_size_for(1)

    def test_tiny_comparison(self):
        data = fig11_adaptive_vs_qilin(
            proc_counts=(4,), seeds=(1,), per_element_n=20000
        )
        assert "ours (adaptive)" in data.series
        assert data.summary["Qilin training energy, 1 cabinet (paper 37 kWh)"] == pytest.approx(37.0)


class TestFig12And13Generators:
    def test_problem_sizes(self):
        assert problem_size_for_cabinets(1) == 280_000
        assert problem_size_for_cabinets(80) == 2_240_000
        assert problem_size_for_cabinets(4) == 560_000

    def test_small_scaling(self):
        data = fig12_cabinet_scaling(cabinets=(1, 2))
        points = dict(data.series["Linpack (ours)"])
        assert points[2] > points[1] * 1.5

    def test_undefined_cabinet_count_rejected(self):
        with pytest.raises(ValueError):
            fig12_cabinet_scaling(cabinets=(3,))

    def test_progress_small(self):
        data = fig13_progress(cabinets=1, n=120_000)
        curve = data.series["cumulative TFLOPS"]
        assert curve[-1][0] == pytest.approx(100.0, abs=0.1)
        assert data.summary["final (paper 563.1 TFLOPS)"] > 0


class TestTraceGenerators:
    def test_table1(self):
        trace = table1_trace()
        assert trace.task_order == ["T0", "T1", "T3", "T2"]
        assert trace.overlap_confirmed
        assert len(trace.rows) > 8

    def test_table1_rejects_non_2x2(self):
        with pytest.raises(ValueError):
            table1_trace(n=4096)

    def test_worked_example_values(self):
        example = worked_example()
        assert example.matrix_mb == pytest.approx(800.0)
        assert example.transfer_seconds == pytest.approx(5.28, rel=1e-3)
        assert example.compute_seconds == pytest.approx(8.33, rel=1e-2)
        assert example.pipelined_gpu_path_seconds < example.compute_seconds + example.transfer_seconds
