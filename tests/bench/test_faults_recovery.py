"""The faults_bench adaptive-recovery claim, pinned as a regression test.

Section IV's central argument under a thermal emergency: the adaptive
mapping sheds GPU load, lets the card cool, and regains its pre-throttle
rate; the static peak-trained split keeps feeding the hot GPU and never
does.  ``repro.bench faults`` prints this as a summary line — these tests
pin it at a fixed problem order and seed so a regression in the injector,
the shed logic, or the adaptive update rule fails CI instead of silently
flipping a bench figure.
"""

import pytest

from repro.bench.faults_bench import faults_study, throttle_recovery
from repro.hpl.driver import Configuration

# Pinned experiment: deep mid-run throttle at N=36000, seed 11.  The margin
# between the two configurations is wide (~0.999 vs ~0.655), so the 0.90
# threshold tests the claim, not the noise.
N = 36000
SEED = 11


@pytest.fixture(scope="module")
def adaptive():
    return throttle_recovery(Configuration.ACMLG_BOTH, n=N, seed=SEED)


@pytest.fixture(scope="module")
def static():
    return throttle_recovery(Configuration.STATIC_PEAK, n=N, seed=SEED)


class TestAdaptiveRecovery:
    def test_adaptive_regains_90_percent_of_pre_throttle_rate(self, adaptive):
        assert adaptive.recovery >= 0.90
        assert adaptive.recovered

    def test_static_does_not_recover(self, static):
        assert static.recovery < 0.90
        assert not static.recovered

    def test_adaptive_sheds_and_gets_the_clock_back(self, adaptive):
        events = [e.kind for e in adaptive.faulted.degraded.events]
        assert events == ["gpu_throttle", "gpu_clock_restored"]

    def test_static_rides_the_throttle_to_the_end(self, static):
        events = [e.kind for e in static.faulted.degraded.events]
        assert events == ["gpu_throttle"]
        assert static.faulted.degraded.gpu_throttled

    def test_both_slow_down_while_throttled(self, adaptive, static):
        # Some step during the fault window must dip well below clean rate.
        assert min(adaptive.step_ratios) < 0.95
        assert min(static.step_ratios) < 0.80

    def test_faulted_never_beats_clean(self, adaptive, static):
        for study in (adaptive, static):
            assert max(study.step_ratios) <= 1.0 + 1e-9
            assert study.faulted.gflops <= study.clean.gflops


@pytest.mark.slow
class TestBenchStudy:
    def test_faults_study_reports_the_pinned_claim(self):
        data = faults_study(n=N, seed=SEED)
        assert data.summary["adaptive recovered >= 90% of pre-throttle rate"] is True
        assert data.summary["static recovered >= 90% of pre-throttle rate"] is False
