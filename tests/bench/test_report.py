"""Unit tests for the benchmark reporting containers."""

import pytest

from repro.bench.report import SeriesData, series_table


class TestSeriesData:
    def make(self):
        data = SeriesData(title="demo", x_label="N", y_label="GFLOPS")
        data.add_point("a", 1024, 10.0)
        data.add_point("a", 2048, 20.0)
        data.add_point("b", 2048, 15.0)
        return data

    def test_add_and_xs(self):
        data = self.make()
        assert data.xs() == [1024, 2048]
        assert data.series["a"] == [(1024, 10.0), (2048, 20.0)]

    def test_table_contains_all_series(self):
        table = self.make().table()
        rendered = table.render()
        assert "a" in rendered and "b" in rendered
        assert "demo" in rendered

    def test_missing_points_blank(self):
        rows = self.make().table().rows
        # x=1024 has no 'b' value: blank cell.
        assert rows[0][2] == ""

    def test_render_includes_summary(self):
        data = self.make()
        data.summary["anchor (paper 42)"] = 41.5
        out = data.render()
        assert "anchor (paper 42): 41.5" in out

    def test_render_non_float_summary(self):
        data = self.make()
        data.summary["note"] = "shape preserved"
        assert "note: shape preserved" in data.render()


class TestSeriesTable:
    def test_integer_x_formatting(self):
        table = series_table("t", "x", {"s": [(2.0, 1.5)]})
        assert table.rows[0][0] == "2"

    def test_fractional_x_kept(self):
        table = series_table("t", "x", {"s": [(2.5, 1.5)]})
        assert table.rows[0][0] == "2.5"

    def test_rows_sorted_by_x(self):
        table = series_table("t", "x", {"s": [(3, 1.0), (1, 2.0)]})
        assert [r[0] for r in table.rows] == ["1", "3"]
