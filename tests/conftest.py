"""Shared fixtures and builders for the whole test suite.

The suites repeat one setup everywhere: a deterministic TianHe-1 compute
element (``NO_VARIABILITY``, fresh :class:`~repro.sim.Simulator`), an
:class:`~repro.core.adaptive.AdaptiveMapper` sized for the problem at hand,
and a small seeded :class:`~repro.session.Scenario`.  The builders here are
plain functions (importable as ``tests.conftest``) so module-level helpers
and parametrize tables can use them too; the fixtures below wrap the common
instantiations.
"""

import pytest

from repro.core.adaptive import AdaptiveMapper
from repro.core.static_map import StaticMapper
from repro.hpl.driver import Configuration
from repro.hpl.element_linpack import ElementLinpack
from repro.machine.node import ComputeElement
from repro.machine.presets import XEON_E5450, tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.session import Scenario
from repro.sim import Simulator
from repro.util.rng import RngStream
from repro.util.units import dgemm_flops

#: The seed the canonical small scenarios run under (matches the golden set).
TEST_SEED = 11


def build_element(
    cpu=None,
    variability=NO_VARIABILITY,
    gpu_clock_mhz=None,
    telemetry=None,
    rng_seed=None,
):
    """A deterministic single compute element on a fresh simulator."""
    spec_kw = {}
    if cpu is not None:
        spec_kw["cpu"] = cpu
    if gpu_clock_mhz is not None:
        spec_kw["gpu_clock_mhz"] = gpu_clock_mhz
    element_kw = {}
    if telemetry is not None:
        element_kw["telemetry"] = telemetry
    if rng_seed is not None:
        element_kw["rng"] = RngStream(rng_seed).child("el")
    return ComputeElement(
        Simulator(), tianhe1_element(**spec_kw), variability=variability, **element_kw
    )


def build_adaptive_mapper(element, n, k=1216, slack=1.05, **kw):
    """An AdaptiveMapper with workload bins sized for N x N x k DGEMMs."""
    return AdaptiveMapper(
        element.initial_gsplit,
        len(element.compute_cores),
        max_workload=dgemm_flops(n, n, k) * slack,
        **kw,
    )


def build_mapper(element, mapper_kind, n, k=1216, **kw):
    """adaptive | gpu_only | static — the three mappings the suites compare."""
    if mapper_kind == "adaptive":
        return build_adaptive_mapper(element, n, k=k, **kw)
    if mapper_kind == "gpu_only":
        return StaticMapper(1.0, len(element.compute_cores))
    return StaticMapper(element.initial_gsplit, len(element.compute_cores))


def build_linpack_runner(mapper_kind="adaptive", n_for_bins=23000, cpu=None, **kw):
    """A deterministic single-element Linpack runner (``jitter=False``)."""
    element = build_element(cpu=cpu)
    mapper = build_mapper(element, mapper_kind, n_for_bins)
    return ElementLinpack(element, mapper, jitter=False, **kw)


def small_scenario(configuration=Configuration.ACMLG_BOTH, **kw):
    """A small seeded Scenario — the suites' canonical N=12000 single element."""
    kw.setdefault("n", 12000)
    kw.setdefault("seed", TEST_SEED)
    return Scenario(scheduler=configuration, **kw)


@pytest.fixture
def e5540_element():
    """The canonical TianHe-1 element (Xeon E5540 + downclocked 4870X2)."""
    return build_element()


@pytest.fixture
def e5450_element():
    """The last-512-nodes element (faster-clocked Xeon E5450)."""
    return build_element(cpu=XEON_E5450)


@pytest.fixture
def scenario_factory():
    """Factory fixture for small seeded Scenarios."""
    return small_scenario


@pytest.fixture
def warmed_mapper(e5540_element):
    """An AdaptiveMapper whose databases saw one full Linpack run."""
    mapper = build_adaptive_mapper(e5540_element, 12000)
    runner = ElementLinpack(e5540_element, mapper, jitter=False)
    runner.run_to_completion(12000)
    return mapper


@pytest.fixture
def tmp_mapper_db(tmp_path, warmed_mapper):
    """A warmed mapper database persisted to a temp file; yields the path."""
    from repro.core.persistence import save_mapper

    return save_mapper(warmed_mapper, tmp_path / "mapper.json")
