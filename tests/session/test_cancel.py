"""Cancellation semantics, pinned per state and per execution path.

The contract (``repro.session.runtime`` module docstring):

* queued jobs cancel immediately;
* running jobs cancel at completion — the worker's result is discarded;
* jobs whose execution already finished treat ``cancel()`` as a no-op
  completion.  On the serial fallback path (``WorkerPool`` running jobs
  inline — including the nested-worker case where pools are forbidden)
  that is the *only* possible outcome: a cancel there must return False
  and the job must still complete — never hang.

Every await in this file is wrapped in a timeout so a regression shows up
as a test failure, not a stuck CI job.
"""

import asyncio
import time

import pytest

import repro.exec.pool as pool_mod
from repro.session import AsyncRuntime, AsyncSession, RunState, Scenario

N = 8000
TIMEOUT = 60.0


def scenario(n=N):
    return Scenario(scheduler="cpu", n=n)


def _slow_job(seconds):
    """Module-level (picklable) job body that just burns wall clock."""
    time.sleep(seconds)
    return seconds


async def _within(awaitable):
    return await asyncio.wait_for(awaitable, timeout=TIMEOUT)


class TestCancelQueued:
    def test_cancel_queued_is_immediately_terminal(self):
        async def main():
            async with AsyncSession(serial=True, max_in_flight=1) as session:
                running = session.submit(scenario())
                queued = session.submit(scenario(n=N + 100))
                assert queued.state is RunState.PENDING
                assert queued.cancel() is True
                # Terminal right away -- no waiting on the running job.
                assert queued.state is RunState.CANCELLED
                assert queued.terminal_transitions == 1
                with pytest.raises(asyncio.CancelledError):
                    await _within(queued.result())
                await _within(session.drain())
                return session, running

        session, running = asyncio.run(main())
        assert running.state is RunState.COMPLETED
        assert session.cancelled == 1
        assert session.completed == 1

    def test_cancelled_queued_job_frees_its_slot_for_others(self):
        async def main():
            async with AsyncSession(serial=True, max_in_flight=1) as session:
                first = session.submit(scenario())
                victim = session.submit(scenario(n=N + 100))
                survivor = session.submit(scenario(n=N + 200))
                victim.cancel()
                await _within(session.drain())
                return first, victim, survivor

        first, victim, survivor = asyncio.run(main())
        assert first.state is RunState.COMPLETED
        assert victim.state is RunState.CANCELLED
        assert survivor.state is RunState.COMPLETED


class TestCancelRunning:
    def test_running_job_cancels_at_completion_result_discarded(self):
        async def main():
            async with AsyncRuntime(slots=1, serial=False) as runtime:
                handle = runtime.submit_job(_slow_job, {"seconds": 1.0})
                # Give the pool a beat to pick it up.
                deadline = time.monotonic() + TIMEOUT
                while handle.state is RunState.PENDING:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.01)
                assert handle.state is RunState.RUNNING
                cancelled = handle.cancel()
                state = await _within(handle.wait())
                return handle, cancelled, state

        handle, cancelled, state = asyncio.run(main())
        assert cancelled is True
        assert state is RunState.CANCELLED
        assert handle.terminal_transitions == 1

        async def fetch():
            with pytest.raises(asyncio.CancelledError):
                await _within(handle.result())

        asyncio.run(fetch())


class TestCancelSerialFallback:
    def test_serial_path_cancel_is_noop_completion_not_a_hang(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit(scenario())
                # Inline execution already ran inside submit(); the state
                # is RUNNING only because finalization waits for the loop.
                assert handle.state is RunState.RUNNING
                assert handle.cancel() is False
                result = await _within(handle.result())
                return handle, result

        handle, result = asyncio.run(main())
        assert handle.state is RunState.COMPLETED
        assert handle.terminal_transitions == 1
        assert result.gflops > 0

    def test_nested_worker_forces_serial_and_cancel_stays_noop(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_IN_WORKER", True)

        async def main():
            async with AsyncSession() as session:  # no explicit serial=
                assert session.pool.serial, "nested pool must degrade to serial"
                handle = session.submit(scenario())
                assert handle.cancel() is False
                result = await _within(handle.result())
                return handle, result, session

        handle, result, session = asyncio.run(main())
        assert handle.state is RunState.COMPLETED
        assert result.gflops > 0
        assert session.cancelled == 0


class TestCancelTerminal:
    def test_cancel_after_completion_returns_false(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit(scenario())
                await _within(handle.result())
                return handle

        handle = asyncio.run(main())
        assert handle.cancel() is False
        assert handle.state is RunState.COMPLETED
        assert handle.terminal_transitions == 1

    def test_second_cancel_of_cancelled_job_returns_false(self):
        async def main():
            async with AsyncSession(serial=True, max_in_flight=1) as session:
                session.submit(scenario())
                queued = session.submit(scenario(n=N + 100))
                assert queued.cancel() is True
                assert queued.cancel() is False
                await _within(session.drain())
                return queued

        queued = asyncio.run(main())
        assert queued.terminal_transitions == 1


class TestCloseCancelsQueued:
    def test_close_cancels_backlog_but_finishes_in_flight(self):
        async def main():
            session = AsyncSession(serial=True, max_in_flight=1)
            async with session:
                running = session.submit(scenario())
                backlog = [session.submit(scenario(n=N + 100 * i)) for i in (1, 2)]
                # __aexit__ -> close(cancel_queued=True)
            return running, backlog

        running, backlog = asyncio.run(main())
        assert running.state is RunState.COMPLETED
        assert [h.state for h in backlog] == [RunState.CANCELLED, RunState.CANCELLED]
        for handle in backlog:
            assert handle.terminal_transitions == 1
