"""Session.run must close its ledger on *every* exit path.

A failing scenario must not leak file descriptors: the soak harness churns
thousands of runs and asserts the process fd table stays flat, which is
only possible if the ledger's streaming sink is closed when the run
raises — including when it raises *before* the run proper starts (the
scenario hash failing to canonicalise) and when the failure handler itself
blows up partway.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.session.sync as sync_mod
from repro import obs
from repro.session import Scenario, Session

N = 8000


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def _sink_closed(ledger) -> bool:
    return ledger.sink._closed


def scenario(n=N):
    return Scenario(scheduler="cpu", n=n)


class TestFailingRunClosesLedger:
    def test_raising_run_records_failure_and_closes_sink(self, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("solver blew up")

        monkeypatch.setattr(sync_mod, "_run_linpack", explode)
        ledger = obs.RunLedger.open("fd-test", root=tmp_path)
        with pytest.raises(RuntimeError, match="solver blew up"):
            Session(scenario()).run(ledger=ledger)

        assert _sink_closed(ledger)
        summary = json.loads((ledger.directory / "summary.json").read_text())
        assert summary["status"] == "failed"
        assert "solver blew up" in summary["summary"]["error"]

    def test_failure_before_the_run_starts_still_closes_sink(
        self, tmp_path, monkeypatch
    ):
        # The first thing run() does with a ledger is hash the scenario;
        # a failure there must not leave the stream open.
        monkeypatch.setattr(
            Scenario,
            "content_hash",
            lambda self: (_ for _ in ()).throw(ValueError("unhashable")),
        )
        ledger = obs.RunLedger.open("fd-test", root=tmp_path)
        with pytest.raises(ValueError, match="unhashable"):
            Session(scenario()).run(ledger=ledger)
        assert _sink_closed(ledger)
        summary = json.loads((ledger.directory / "summary.json").read_text())
        assert summary["status"] == "failed"

    def test_failing_failure_handler_still_closes_sink(self, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("primary failure")

        monkeypatch.setattr(sync_mod, "_run_linpack", explode)
        ledger = obs.RunLedger.open("fd-test", root=tmp_path)

        # fail() itself dies partway (summary disk full, say) -- the
        # original error must still propagate and the sink must still
        # close.
        def broken_fail(error):
            raise OSError("no space left on device")

        monkeypatch.setattr(ledger, "fail", broken_fail)
        with pytest.raises(OSError, match="no space left"):
            Session(scenario()).run(ledger=ledger)
        assert _sink_closed(ledger)

    def test_successful_run_finishes_ledger(self, tmp_path):
        ledger = obs.RunLedger.open("fd-test", root=tmp_path)
        result = Session(scenario()).run(ledger=ledger)
        assert result.gflops > 0
        assert _sink_closed(ledger)
        summary = json.loads((ledger.directory / "summary.json").read_text())
        assert summary["status"] == "completed"
        assert summary["summary"]["gflops"] == result.gflops


class TestFdTableStaysFlat:
    def test_repeated_failing_runs_leak_no_fds(self, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(sync_mod, "_run_linpack", explode)

        def churn(rounds):
            for i in range(rounds):
                ledger = obs.RunLedger.open(f"leak-{i}", root=tmp_path)
                with pytest.raises(RuntimeError):
                    Session(scenario()).run(ledger=ledger)

        churn(3)  # warmup: lazy imports, logging, pytest internals
        before = _fd_count()
        churn(20)
        after = _fd_count()
        assert after <= before, f"fd table grew: {before} -> {after}"

    def test_repeated_successful_runs_leak_no_fds(self, tmp_path):
        def churn(rounds):
            for i in range(rounds):
                ledger = obs.RunLedger.open(f"ok-{i}", root=tmp_path)
                Session(scenario()).run(ledger=ledger)

        churn(2)
        before = _fd_count()
        churn(10)
        after = _fd_count()
        assert after <= before, f"fd table grew: {before} -> {after}"
