"""FairShareScheduler contract: round-robin order, caps, backpressure.

Pure state-machine tests — no asyncio, no processes — pinning the exact
semantics the runtime, the property suite, and the soak harness all rely
on.
"""

import pytest

from repro.session import AdmissionFull, FairShareScheduler
from repro.session.fair_share import UnknownJob


def drain_grants(scheduler, limit=1000):
    granted = []
    for _ in range(limit):
        job = scheduler.next_job()
        if job is None:
            break
        granted.append(job)
    return granted


class TestRoundRobin:
    def test_single_tenant_is_fifo(self):
        s = FairShareScheduler(slots=2, max_in_flight=2)
        for i in range(4):
            s.submit("a", f"a{i}")
        assert drain_grants(s) == ["a0", "a1"]
        s.finish("a0")
        assert s.next_job() == "a2"

    def test_tenants_alternate(self):
        s = FairShareScheduler(slots=4, max_in_flight=4)
        for i in range(2):
            s.submit("a", f"a{i}")
            s.submit("b", f"b{i}")
        assert drain_grants(s) == ["a0", "b0", "a1", "b1"]

    def test_late_tenant_joins_the_rotation(self):
        s = FairShareScheduler(slots=6, max_in_flight=6)
        for i in range(3):
            s.submit("a", f"a{i}")
        assert s.next_job() == "a0"
        for i in range(3):
            s.submit("b", f"b{i}")
        # b joins at the back of the ring and alternates from there on.
        assert drain_grants(s) == ["a1", "b0", "a2", "b1", "b2"]

    def test_backlogged_tenants_granted_counts_skew_at_most_one(self):
        s = FairShareScheduler(slots=4, max_in_flight=4)
        tenants = ("a", "b", "c")
        seq = {t: 0 for t in tenants}
        for i in range(30):
            t = tenants[i % 3]
            s.submit(t, f"{t}{seq[t]}")
            seq[t] += 1
        # Churn: repeatedly grant-to-capacity, then finish everything.
        while True:
            granted = drain_grants(s)
            if not granted:
                break
            for job in granted:
                s.finish(job)
            counts = [s.granted_count(t) for t in tenants]
            live = [t for t in tenants if s.queued_count(t) or s.in_flight_count(t)]
            if len(live) == len(tenants):
                assert max(counts) - min(counts) <= 1, counts
            s.check_invariants()
        assert [s.granted_count(t) for t in tenants] == [10, 10, 10]


class TestCaps:
    def test_global_slot_cap(self):
        s = FairShareScheduler(slots=2, max_in_flight=10)
        for i in range(5):
            s.submit("a", f"a{i}")
        assert len(drain_grants(s)) == 2
        assert s.next_job() is None
        s.finish("a0")
        assert s.next_job() == "a2"

    def test_per_tenant_in_flight_cap_cannot_be_starved_through(self):
        s = FairShareScheduler(slots=8, max_in_flight=2)
        for i in range(6):
            s.submit("hog", f"h{i}")
        s.submit("small", "s0")
        granted = drain_grants(s)
        assert granted.count("s0") == 1
        assert sum(job.startswith("h") for job in granted) == 2
        assert s.in_flight_count("hog") == 2

    def test_admission_bound_raises_admission_full(self):
        s = FairShareScheduler(slots=1, max_queued=2)
        s.submit("a", "a0")
        s.submit("a", "a1")
        with pytest.raises(AdmissionFull):
            s.submit("a", "a2")
        # Other tenants are unaffected by a's backpressure.
        s.submit("b", "b0")

    def test_admission_bound_counts_queued_not_in_flight(self):
        s = FairShareScheduler(slots=4, max_in_flight=4, max_queued=1)
        s.submit("a", "a0")
        assert s.next_job() == "a0"  # dequeued -> queue empty again
        s.submit("a", "a1")
        with pytest.raises(AdmissionFull):
            s.submit("a", "a2")

    def test_per_tenant_overrides(self):
        s = FairShareScheduler(slots=8, max_in_flight=1)
        s.tenant("big", max_in_flight=3)
        for i in range(4):
            s.submit("big", f"b{i}")
            s.submit("small", f"s{i}")
        granted = drain_grants(s)
        assert sum(j.startswith("b") for j in granted) == 3
        assert sum(j.startswith("s") for j in granted) == 1

    def test_duplicate_job_id_rejected(self):
        s = FairShareScheduler(slots=1)
        s.submit("a", "j")
        with pytest.raises(ValueError, match="duplicate"):
            s.submit("b", "j")


class TestCancelAndFinish:
    def test_cancel_queued_removes_the_job(self):
        s = FairShareScheduler(slots=1)
        s.submit("a", "a0")
        s.submit("a", "a1")
        assert s.next_job() == "a0"
        assert s.cancel_queued("a1") is True
        assert s.queued_count() == 0
        s.check_invariants()

    def test_cancel_in_flight_returns_false(self):
        s = FairShareScheduler(slots=1)
        s.submit("a", "a0")
        assert s.next_job() == "a0"
        assert s.cancel_queued("a0") is False
        assert s.in_flight_count() == 1

    def test_cancel_unknown_returns_false(self):
        s = FairShareScheduler(slots=1)
        assert s.cancel_queued("nope") is False

    def test_finish_requires_in_flight(self):
        s = FairShareScheduler(slots=1)
        s.submit("a", "a0")
        with pytest.raises(UnknownJob):
            s.finish("a0")  # still queued
        assert s.queued_count("a") == 1  # complaint must not lose the job
        s.check_invariants()
        with pytest.raises(UnknownJob):
            s.finish("ghost")

    def test_conservation_through_mixed_churn(self):
        s = FairShareScheduler(slots=3, max_in_flight=2)
        live = set()
        for i in range(12):
            t = "ab"[i % 2]
            s.submit(t, f"j{i}")
            live.add(f"j{i}")
        while live:
            for job in drain_grants(s):
                s.finish(job)
                live.discard(job)
            for job in list(live):
                if s.cancel_queued(job):
                    live.discard(job)
            s.check_invariants()
        assert s.queued_count() == 0
        assert s.in_flight_count() == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"slots": 0},
        {"slots": 1, "max_in_flight": 0},
        {"slots": 1, "max_queued": 0},
    ])
    def test_constructor_bounds(self, kwargs):
        with pytest.raises(ValueError):
            FairShareScheduler(**kwargs)

    def test_tenant_override_bounds(self):
        s = FairShareScheduler(slots=1)
        with pytest.raises(ValueError):
            s.tenant("a", max_in_flight=0)
        with pytest.raises(ValueError):
            s.tenant("a", max_queued=-1)

    def test_iter_jobs_reports_states(self):
        s = FairShareScheduler(slots=1)
        s.submit("a", "a0")
        s.submit("a", "a1")
        s.next_job()
        states = {job: state for job, _, state in s.iter_jobs()}
        assert states == {"a0": "in-flight", "a1": "queued"}
