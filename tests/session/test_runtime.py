"""AsyncSession runtime behavior: streaming, lifecycle, tenancy, ledger.

Serial mode (inline execution on the event-loop thread) keeps these fast
and deterministic; pool-specific behavior has its own coverage in
``test_package_api.py`` (parity) and ``test_cancel.py`` (interruption).
"""

import asyncio

import pytest

from repro import obs
from repro.session import (
    AdmissionFull,
    AsyncSession,
    RunState,
    Scenario,
    Session,
)

N = 8000


def scenario(n=N, scheduler="cpu", **kwargs):
    return Scenario(scheduler=scheduler, n=n, **kwargs)


def _boom(message):
    """Module-level (hence picklable) job body that always raises."""
    raise RuntimeError(message)


class TestLifecycle:
    def test_handle_reaches_exactly_one_terminal_state(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handles = [session.submit(scenario(n=N + 100 * i)) for i in range(5)]
                await session.drain()
                return handles

        handles = asyncio.run(main())
        for handle in handles:
            assert handle.state is RunState.COMPLETED
            assert handle.terminal_transitions == 1

    def test_wait_returns_terminal_state_without_raising(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit(scenario())
                return await handle.wait()

        assert asyncio.run(main()) is RunState.COMPLETED

    def test_failed_run_raises_original_error_from_result(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit_job(_boom, {"message": "kaboom"})
                with pytest.raises(RuntimeError, match="kaboom") as excinfo:
                    await handle.result()
                return handle, excinfo.value

        handle, error = asyncio.run(main())
        assert handle.state is RunState.FAILED
        assert handle.terminal_transitions == 1
        assert handle.exception() is error

    def test_submit_after_close_raises(self):
        async def main():
            session = AsyncSession(serial=True)
            await session.close()
            with pytest.raises(RuntimeError, match="closed"):
                session.submit(scenario())

        asyncio.run(main())

    def test_close_is_idempotent(self):
        async def main():
            session = AsyncSession(serial=True)
            session.submit(scenario())
            await session.close()
            await session.close()

        asyncio.run(main())

    def test_submit_outside_loop_raises(self):
        session_holder = {}

        async def make():
            session_holder["s"] = AsyncSession(serial=True)

        asyncio.run(make())
        with pytest.raises(RuntimeError):
            session_holder["s"].submit(scenario())

    def test_runtime_counters(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                good = [session.submit(scenario(n=N + 100 * i)) for i in range(3)]
                bad = session.submit_job(_boom, {"message": "bogus"})
                await session.drain()
                return session

        session = asyncio.run(main())
        assert session.submitted == 4
        assert session.completed == 3
        assert session.failed == 1
        assert session.cancelled == 0
        assert session.live_jobs == 0


class TestTenancy:
    def test_admission_full_surfaces_to_submit(self):
        async def main():
            async with AsyncSession(serial=True, max_in_flight=1, max_queued=1) as session:
                # Serial execution resolves inline but finalization waits
                # for the event loop, so submitting without awaiting builds
                # real backlog: one in flight, one queued, third bounced.
                first = session.submit(scenario(), tenant="t")
                second = session.submit(scenario(n=N + 100), tenant="t")
                with pytest.raises(AdmissionFull):
                    session.submit(scenario(n=N + 200), tenant="t")
                await session.drain()
                return first, second

        first, second = asyncio.run(main())
        assert first.state is RunState.COMPLETED
        assert second.state is RunState.COMPLETED

    def test_tenants_tracked_per_submission(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                a = session.submit(scenario(), tenant="alpha")
                b = session.submit(scenario(n=N + 100), tenant="beta")
                await session.drain()
                return session, a, b

        session, a, b = asyncio.run(main())
        assert (a.tenant, b.tenant) == ("alpha", "beta")
        assert session.scheduler.tenants() == ["alpha", "beta"]
        assert session.scheduler.granted_count("alpha") == 1
        assert session.scheduler.granted_count("beta") == 1


class TestStreaming:
    def test_stream_yields_states_spans_and_metrics(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit(scenario(), stream=True)
                events = [event async for event in handle.stream()]
                return handle, events

        handle, events = asyncio.run(main())
        kinds = [event.kind for event in events]
        states = [e.data["state"] for e in events if e.kind == "state"]
        assert states == ["pending", "running", "completed"]
        assert "span" in kinds, kinds
        assert kinds.count("metrics") == 1
        metrics = next(e for e in events if e.kind == "metrics")
        assert isinstance(metrics.data.get("metrics"), dict)
        for event in events:
            assert event.job_id == handle.job_id

    def test_stream_replays_history_after_completion(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit(scenario(), stream=True)
                await handle.result()
                first = [event.kind async for event in handle.stream()]
                second = [event.kind async for event in handle.stream()]
                return first, second

        first, second = asyncio.run(main())
        assert first == second
        assert first[0] == "state"

    def test_stream_without_telemetry_has_lifecycle_only(self):
        async def main():
            async with AsyncSession(serial=True) as session:
                handle = session.submit(scenario())  # stream defaults off
                await handle.result()
                return [event.kind async for event in handle.stream()]

        assert set(asyncio.run(main())) == {"state"}


class TestLedgerIntegration:
    def test_ledger_holds_journal_and_event_streams(self, tmp_path):
        ledger = obs.RunLedger.open("session-test", root=tmp_path)

        async def main():
            async with AsyncSession(serial=True, ledger=ledger) as session:
                handles = [
                    session.submit(scenario(n=N + 100 * i), stream=True)
                    for i in range(2)
                ]
                return [await h.result() for h in handles]

        results = asyncio.run(main())
        ledger.finish({"jobs": len(results)})

        journal = ledger.directory / "scenarios.jsonl"
        assert journal.exists()
        assert len(journal.read_text().splitlines()) == 2
        streams = sorted((ledger.directory / "streams").glob("events-*.jsonl"))
        assert len(streams) == 2

        import json

        manifest = json.loads((ledger.directory / "manifest.json").read_text())
        assert manifest["sweep_journal"] == "scenarios.jsonl"

    def test_journal_matches_sync_results(self, tmp_path):
        from repro.session import SweepJournal

        scenarios = [scenario(n=N + 100 * i) for i in range(3)]
        path = tmp_path / "j.jsonl"

        async def main():
            async with AsyncSession(serial=True, journal=path) as session:
                for s in scenarios:
                    session.submit(s)
                await session.drain()

        asyncio.run(main())
        records, truncated = SweepJournal.load(path)
        assert not truncated
        by_hash = {r["hash"]: r for r in records}
        for s in scenarios:
            want = Session(s).run()
            got = by_hash[s.content_hash()]
            assert got["gflops"] == want.gflops
            assert got["elapsed"] == want.elapsed
            assert got["n"] == s.n
