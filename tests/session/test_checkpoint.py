"""SweepJournal: the checkpoint format and the resume plan.

Planning is by scenario content hash with multiset semantics, and reading
must tolerate the kill signature — a torn final line — because the whole
point of the journal is being read after a SIGKILL
(``test_resume_crash.py`` does that for real).
"""

import json

import pytest

from repro import obs
from repro.session import (
    JOURNAL_NAME,
    ResumePlan,
    Scenario,
    Session,
    SweepJournal,
    run_sweep,
)

N = 8000


def scenario(n=N, seed=7):
    return Scenario(scheduler="cpu", n=n, seed=seed)


class TestRoundTrip:
    def test_record_then_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        s = scenario()
        result = Session(s).run()
        with SweepJournal(path) as journal:
            payload = journal.record(s, result, tenant="team-a")
            assert journal.records_written == 1
        records, truncated = SweepJournal.load(path)
        assert not truncated
        assert len(records) == 1
        record = records[0]
        assert record["hash"] == s.content_hash()
        assert record["tenant"] == "team-a"
        assert record["scheduler"] == "cpu"
        assert record["n"] == N
        assert record["gflops"] == result.gflops
        assert record["elapsed"] == result.elapsed
        assert record["degraded"] is None
        assert payload["hash"] == record["hash"]

    def test_append_after_close_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            journal.append({"hash": "x"})

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        records, truncated = SweepJournal.load(tmp_path / "never-written.jsonl")
        assert records == []
        assert truncated is False

    def test_fsync_off_still_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, fsync=False) as journal:
            journal.record(scenario(), Session(scenario()).run())
        records, _ = SweepJournal.load(path)
        assert len(records) == 1


class TestTornTail:
    def test_torn_final_line_drops_only_that_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        s1, s2 = scenario(), scenario(n=N + 100)
        result = Session(s1).run()
        with SweepJournal(path) as journal:
            journal.record(s1, result)
            journal.record(s2, Session(s2).run())
        # Simulate the kill landing mid-write of the second record.
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[1][: len(lines[1]) // 2])

        records, truncated = SweepJournal.load(path)
        assert truncated is True
        assert [r["hash"] for r in records] == [s1.content_hash()]

        plan = SweepJournal.plan(path, [s1, s2])
        assert list(plan.done) == [0]
        assert [index for index, _ in plan.pending] == [1]


class TestPlan:
    def test_fresh_journal_means_everything_pending(self, tmp_path):
        scenarios = [scenario(n=N + 100 * i) for i in range(3)]
        plan = SweepJournal.plan(tmp_path / "j.jsonl", scenarios)
        assert plan.done == {}
        assert [i for i, _ in plan.pending] == [0, 1, 2]
        assert plan.resumed is False

    def test_partial_journal_splits_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        scenarios = [scenario(n=N + 100 * i) for i in range(4)]
        with SweepJournal(path) as journal:
            journal.record(scenarios[1], Session(scenarios[1]).run())
            journal.record(scenarios[3], Session(scenarios[3]).run())
        plan = SweepJournal.plan(path, scenarios)
        assert sorted(plan.done) == [1, 3]
        assert [i for i, _ in plan.pending] == [0, 2]
        assert plan.resumed is True

    def test_duplicate_scenarios_use_multiset_semantics(self, tmp_path):
        path = tmp_path / "j.jsonl"
        s = scenario()
        with SweepJournal(path) as journal:
            journal.record(s, Session(s).run())
        # The sweep lists the same scenario twice; one completion satisfies
        # exactly one occurrence.
        plan = SweepJournal.plan(path, [s, s])
        assert list(plan.done) == [0]
        assert [i for i, _ in plan.pending] == [1]

    def test_journal_entries_outside_the_sweep_are_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        in_sweep, dropped = scenario(), scenario(n=N + 100)
        with SweepJournal(path) as journal:
            journal.record(dropped, Session(dropped).run())
            journal.record(in_sweep, Session(in_sweep).run())
        plan = SweepJournal.plan(path, [in_sweep])
        assert list(plan.done) == [0]
        assert plan.pending == ()

    def test_completion_counts(self, tmp_path):
        path = tmp_path / "j.jsonl"
        s = scenario()
        result = Session(s).run()
        with SweepJournal(path) as journal:
            journal.record(s, result)
            journal.record(s, result)
        counts = SweepJournal.completion_counts(path)
        assert counts == {s.content_hash(): 2}


class TestInLedger:
    def test_journal_lands_in_the_run_directory(self, tmp_path):
        ledger = obs.RunLedger.open("checkpoint-test", root=tmp_path)
        journal = SweepJournal.in_ledger(ledger)
        try:
            assert journal.path == ledger.directory / JOURNAL_NAME
            manifest = json.loads((ledger.directory / "manifest.json").read_text())
            assert manifest["sweep_journal"] == JOURNAL_NAME
        finally:
            journal.close()
            ledger.finish({})


class TestRunSweep:
    def test_resume_skips_journaled_scenarios(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        scenarios = [scenario(n=N + 100 * i) for i in range(4)]
        first = run_sweep(scenarios, journal_path=path, serial=True)
        assert [row["n"] for row in first] == [s.n for s in scenarios]
        assert len(SweepJournal.load(path)[0]) == 4

        # Second invocation: nothing pending, journal untouched, same rows.
        before = path.read_bytes()
        second = run_sweep(scenarios, journal_path=path, serial=True)
        assert path.read_bytes() == before
        assert [row["hash"] for row in second] == [row["hash"] for row in first]
        assert [row["gflops"] for row in second] == [row["gflops"] for row in first]

    def test_resume_false_reruns_and_appends(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        scenarios = [scenario(), scenario(n=N + 100)]
        run_sweep(scenarios, journal_path=path, serial=True)
        run_sweep(scenarios, journal_path=path, serial=True, resume=False)
        assert len(SweepJournal.load(path)[0]) == 4

    def test_tenant_of_lands_in_the_journal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        scenarios = [scenario(n=N + 100 * i) for i in range(2)]
        run_sweep(
            scenarios,
            journal_path=path,
            serial=True,
            tenant_of=lambda index, s: f"tenant-{index}",
        )
        records, _ = SweepJournal.load(path)
        assert sorted(r["tenant"] for r in records) == ["tenant-0", "tenant-1"]

    def test_resume_plan_construction(self):
        # The resume=False branch builds a ResumePlan by hand; keep the
        # shape honest.
        scenarios = (scenario(),)
        plan = ResumePlan(done={}, pending=tuple(enumerate(scenarios)))
        assert plan.resumed is False
        assert plan.pending[0][1] is scenarios[0]
