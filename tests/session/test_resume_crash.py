"""SIGKILL a sweep mid-flight; resume must lose only in-flight work.

Mirrors ``tests/obs/test_crash_safety.py``: a subprocess drives
:func:`repro.session.run_sweep` over a fixed scenario list, printing its
journal path up front; the parent waits until at least three completions
are journaled, then SIGKILLs it — no atexit, no finally, no journal
close.  The assertions are the checkpoint contract:

* the journal is readable (a torn tail drops only the torn line);
* :meth:`SweepJournal.plan` re-runs **exactly** the un-journaled
  scenarios — completed work is never repeated, in-flight work is never
  silently dropped;
* after resuming, the merged journal equals an uninterrupted run's, as a
  completion multiset and value-for-value (runs are deterministic).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.session import Scenario, SweepJournal, run_sweep

REPRO_SRC = str(Path(repro.__file__).resolve().parents[1])

#: The sweep both the victim and the parent agree on.
SWEEP_NS = [8000 + 100 * i for i in range(10)]
KILL_AFTER = 3  # journaled completions before the parent pulls the trigger


def sweep_scenarios():
    return [Scenario(scheduler="cpu", n=n) for n in SWEEP_NS]


VICTIM = textwrap.dedent(
    """
    import sys, time
    import repro.session.runtime as runtime
    from repro.session import Scenario, run_sweep

    # Slow each scenario down so the parent's kill lands mid-sweep
    # deterministically; the journal record itself is untouched.
    _original = runtime._execute_scenario
    def _slowed(scenario, events_path=None):
        result = _original(scenario, events_path)
        time.sleep(0.25)
        return result
    runtime._execute_scenario = _slowed

    journal = sys.argv[1]
    print(journal, flush=True)           # parent: poll this, then kill
    scenarios = [Scenario(scheduler="cpu", n=8000 + 100 * i) for i in range(10)]
    run_sweep(scenarios, journal_path=journal, serial=True)
    print("SWEEP-FINISHED", flush=True)  # must never be reached
    """
)


@pytest.fixture
def killed_sweep(tmp_path):
    """Journal path of a sweep whose driver was SIGKILLed mid-flight."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [REPRO_SRC, env.get("PYTHONPATH", "")])
    )
    journal = tmp_path / "sweep.jsonl"
    process = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(journal)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        printed = process.stdout.readline().strip()
        assert printed == str(journal), process.stderr.read()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            records, _ = SweepJournal.load(journal)
            if len(records) >= KILL_AFTER:
                break
            assert process.poll() is None, (
                "sweep finished before the kill: " + process.stderr.read()
            )
            time.sleep(0.01)
        else:
            pytest.fail("sweep never journaled enough completions to kill")
        process.kill()  # SIGKILL: no cleanup of any kind runs
        process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL
        yield journal
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


class TestResumeAfterSigkill:
    def test_exactly_the_unjournaled_scenarios_are_pending(self, killed_sweep):
        scenarios = sweep_scenarios()
        records, _ = SweepJournal.load(killed_sweep)
        assert KILL_AFTER <= len(records) < len(scenarios)

        plan = SweepJournal.plan(killed_sweep, scenarios)
        journaled = sorted(r["hash"] for r in records)
        done_hashes = sorted(scenarios[i].content_hash() for i in plan.done)
        pending_hashes = sorted(s.content_hash() for _, s in plan.pending)
        assert done_hashes == journaled
        assert sorted(done_hashes + pending_hashes) == sorted(
            s.content_hash() for s in scenarios
        )

    def test_resume_reruns_only_pending_and_merges_to_uninterrupted(
        self, killed_sweep, tmp_path
    ):
        scenarios = sweep_scenarios()
        survived = len(SweepJournal.load(killed_sweep)[0])

        rows = run_sweep(scenarios, journal_path=killed_sweep, serial=True)
        assert [row["n"] for row in rows] == SWEEP_NS

        # The journal gained exactly the scenarios that had not completed:
        # at most the in-flight one (plus the never-started tail) was lost,
        # and nothing completed was re-run.
        merged = SweepJournal.load(killed_sweep)[0]
        assert len(merged) == survived + (len(scenarios) - survived)

        reference = run_sweep(
            scenarios, journal_path=tmp_path / "uninterrupted.jsonl", serial=True
        )
        assert SweepJournal.completion_counts(
            killed_sweep
        ) == SweepJournal.completion_counts(tmp_path / "uninterrupted.jsonl")
        # Deterministic runs: the merged sweep's values equal the
        # uninterrupted sweep's, row for row.
        assert [row["gflops"] for row in rows] == [
            row["gflops"] for row in reference
        ]
        assert [row["hash"] for row in rows] == [row["hash"] for row in reference]
