"""Property suite: arbitrary churn never breaks the session invariants.

Three machines, three properties:

* :class:`FairShareScheduler` — any executable stream of
  submit/grant/finish/cancel ops keeps :meth:`check_invariants` green
  after *every* op (caps, conservation, ring integrity), and admission is
  rejected exactly at the queue bound;
* the :class:`AsyncSession` runtime — any interleaving of submits,
  cancels, and event-loop yields ends with every handle in **exactly one**
  terminal state and the per-tenant in-flight caps never exceeded;
* :meth:`SweepJournal.plan` — for any synthesized journal (including a
  torn tail) the plan is a partition: done and pending cover the sweep
  exactly once, and done never claims more completions than journaled.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.session import (
    AdmissionFull,
    AsyncRuntime,
    FairShareScheduler,
    RunState,
    SweepJournal,
)
from tests.strategies import (
    churn_op_streams,
    runtime_op_streams,
    scheduler_shapes,
)


class TestSchedulerProperties:
    @given(shape=scheduler_shapes, ops=churn_op_streams)
    @settings(max_examples=60, deadline=None)
    def test_any_churn_stream_keeps_invariants(self, shape, ops):
        slots, max_in_flight, max_queued = shape
        scheduler = FairShareScheduler(
            slots, max_in_flight=max_in_flight, max_queued=max_queued
        )
        seq = 0
        queued: list[str] = []
        in_flight: list[str] = []
        for kind, tenant, selector in ops:
            if kind == "submit":
                job_id = f"job-{seq}"
                seq += 1
                was_full = scheduler.queued_count(tenant) >= (
                    scheduler._tenants[tenant].max_queued
                    if tenant in scheduler._tenants
                    else max_queued
                )
                try:
                    scheduler.submit(tenant, job_id)
                except AdmissionFull:
                    assert was_full, "AdmissionFull below the bound"
                else:
                    assert not was_full, "admission above the bound"
                    queued.append(job_id)
            elif kind == "grant":
                granted = scheduler.next_job()
                if granted is not None:
                    assert granted in queued
                    queued.remove(granted)
                    in_flight.append(granted)
            elif kind == "finish" and in_flight:
                job_id = in_flight.pop(selector % len(in_flight))
                scheduler.finish(job_id)
            elif kind == "cancel" and queued:
                job_id = queued[selector % len(queued)]
                assert scheduler.cancel_queued(job_id) is True
                queued.remove(job_id)
            scheduler.check_invariants()
            assert scheduler.queued_count() == len(queued)
            assert scheduler.in_flight_count() == len(in_flight)

    @given(shape=scheduler_shapes, ops=churn_op_streams)
    @settings(max_examples=30, deadline=None)
    def test_draining_after_any_churn_reaches_empty(self, shape, ops):
        slots, max_in_flight, max_queued = shape
        scheduler = FairShareScheduler(
            slots, max_in_flight=max_in_flight, max_queued=max_queued
        )
        seq = 0
        for kind, tenant, _ in ops:
            if kind == "submit":
                try:
                    scheduler.submit(tenant, f"job-{seq}")
                except AdmissionFull:
                    pass
                seq += 1
        # Fully drain: keep granting and finishing until quiescent.
        for _ in range(10_000):
            granted = scheduler.next_job()
            if granted is None:
                if scheduler.in_flight_count() == 0:
                    break
                for job_id, _, state in list(scheduler.iter_jobs()):
                    if state == "in-flight":
                        scheduler.finish(job_id)
            scheduler.check_invariants()
        assert scheduler.queued_count() == 0
        assert scheduler.in_flight_count() == 0


def _echo(value):
    """Module-level job body: returns its argument."""
    return value


class TestRuntimeProperties:
    @given(ops=runtime_op_streams, max_in_flight=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_every_handle_reaches_exactly_one_terminal_state(
        self, ops, max_in_flight
    ):
        async def main():
            handles = []
            max_seen = 0
            async with AsyncRuntime(
                slots=2, serial=True, max_in_flight=max_in_flight, max_queued=4
            ) as runtime:
                for kind, tenant, selector in ops:
                    if kind == "submit":
                        try:
                            handles.append(
                                runtime.submit_job(
                                    _echo, {"value": len(handles)}, tenant=tenant
                                )
                            )
                        except AdmissionFull:
                            pass
                    elif kind == "cancel" and handles:
                        handles[selector % len(handles)].cancel()
                    elif kind == "yield":
                        await asyncio.sleep(0)
                    runtime.scheduler.check_invariants()
                    for name in runtime.scheduler.tenants():
                        flight = runtime.scheduler.in_flight_count(name)
                        assert flight <= max_in_flight
                        max_seen = max(max_seen, flight)
                await runtime.drain()
            return handles, runtime

        handles, runtime = asyncio.run(main())
        for handle in handles:
            assert handle.state.terminal, handle.state
            assert handle.terminal_transitions == 1
        completed = sum(h.state is RunState.COMPLETED for h in handles)
        cancelled = sum(h.state is RunState.CANCELLED for h in handles)
        assert completed + cancelled == len(handles)
        assert runtime.completed == completed
        assert runtime.cancelled == cancelled
        assert runtime.live_jobs == 0
        # Completed echoes kept their own payloads (no result crosstalk).
        for index, handle in enumerate(handles):
            if handle.state is RunState.COMPLETED:
                assert handle._result == index


#: Hash alphabet small enough that synthesized journals collide with the
#: sweep constantly (the interesting multiset cases).
_hashes = st.sampled_from([f"h{i}" for i in range(6)])


class _FakeScenario:
    """Duck-typed stand-in: plan() only calls content_hash()."""

    def __init__(self, value):
        self.value = value

    def content_hash(self):
        return self.value


class TestResumePlanProperties:
    @given(
        sweep=st.lists(_hashes, max_size=12),
        journaled=st.lists(_hashes, max_size=12),
        torn=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_is_a_partition_of_the_sweep(self, tmp_path_factory, sweep, journaled, torn):
        path = tmp_path_factory.mktemp("plan") / "j.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for value in journaled:
                handle.write('{"hash": "%s", "gflops": 1.0}\n' % value)
            if torn:
                handle.write('{"hash": "h0", "gflo')  # kill signature

        scenarios = [_FakeScenario(value) for value in sweep]
        plan = SweepJournal.plan(path, scenarios)

        done_indices = sorted(plan.done)
        pending_indices = sorted(index for index, _ in plan.pending)
        assert sorted(done_indices + pending_indices) == list(range(len(sweep)))
        assert not set(done_indices) & set(pending_indices)

        # Done never claims more completions of a hash than were journaled
        # (the torn line must not count), and every pending scenario truly
        # had no unclaimed completion left.
        from collections import Counter

        journal_counts = Counter(journaled)
        done_counts = Counter(sweep[i] for i in done_indices)
        for value, count in done_counts.items():
            assert count <= journal_counts[value]
        pending_counts = Counter(sweep[i] for i in pending_indices)
        for value in pending_counts:
            assert done_counts.get(value, 0) == min(
                journal_counts.get(value, 0), Counter(sweep)[value]
            )
