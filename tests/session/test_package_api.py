"""The session package front door: re-exports, parity, picklability.

``repro.session`` grew from a module into a package; every name the old
module exported must keep its import path, and the sync :class:`Session`
must stay byte-identical to what the async runtime produces for the same
scenario.
"""

import asyncio
import pickle

from repro.session import (
    AdmissionFull,
    AsyncRuntime,
    AsyncSession,
    FairShareScheduler,
    ResumePlan,
    RunHandle,
    RunState,
    Scenario,
    Session,
    SessionEvent,
    SweepJournal,
    run,
    run_sweep,
)

N = 8000


class TestReExports:
    def test_scenario_and_session_live_where_they_always_did(self):
        import repro
        import repro.session.scenario
        import repro.session.sync

        assert Scenario is repro.session.scenario.Scenario
        assert Session is repro.session.sync.Session
        assert repro.Scenario is Scenario
        assert repro.Session is Session

    def test_all_is_complete(self):
        import repro.session as pkg

        for name in pkg.__all__:
            assert hasattr(pkg, name), name
        for name in ("Scenario", "Session", "run", "AsyncSession", "RunHandle"):
            assert name in pkg.__all__

    def test_module_level_run_still_works(self):
        scenario = Scenario(scheduler="cpu", n=N)
        assert run(scenario).gflops == Session(scenario).run().gflops


class TestScenarioPicklability:
    """Scenarios cross the process boundary on every async submit."""

    def test_round_trips_through_pickle(self):
        scenario = Scenario(scheduler="acmlg_both", n=N, seed=11)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.content_hash() == scenario.content_hash()

    def test_pickled_scenario_runs_identically(self):
        scenario = Scenario(scheduler="adaptive", n=N)
        clone = pickle.loads(pickle.dumps(scenario))
        assert Session(clone).run().gflops == Session(scenario).run().gflops


class TestAsyncSyncParity:
    def test_async_results_are_byte_identical_to_sync(self):
        scenarios = [
            Scenario(scheduler="cpu", n=N),
            Scenario(scheduler="adaptive", n=N, seed=3),
            Scenario(scheduler="acmlg_both", n=2 * N),
        ]
        expected = [Session(s).run() for s in scenarios]

        async def main():
            async with AsyncSession(serial=True) as session:
                handles = [session.submit(s) for s in scenarios]
                return [await handle.result() for handle in handles]

        got = asyncio.run(main())
        for want, have in zip(expected, got):
            assert have.gflops == want.gflops
            assert have.elapsed == want.elapsed
            assert have.configuration == want.configuration

    def test_pool_mode_matches_serial_mode(self):
        scenarios = [Scenario(scheduler="cpu", n=N + 500 * i) for i in range(4)]

        async def main(serial):
            async with AsyncSession(slots=2, serial=serial) as session:
                handles = [session.submit(s) for s in scenarios]
                return [(await h.result()).gflops for h in handles]

        assert asyncio.run(main(True)) == asyncio.run(main(False))
