"""Unit tests for repro.util.validation."""

import pytest

from repro.util import validation as v


class TestRequire:
    def test_passes_silently(self):
        v.require(True, "never")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            v.require(False, "broken")


class TestRequirePositive:
    def test_accepts_and_returns(self):
        assert v.require_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be > 0"):
            v.require_positive(bad, "x")


class TestRequireNonnegative:
    def test_accepts_zero(self):
        assert v.require_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            v.require_nonnegative(-1e-9, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            v.require_nonnegative(float("nan"), "x")


class TestRequireFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0, 0.889])
    def test_accepts(self, ok):
        assert v.require_fraction(ok, "f") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            v.require_fraction(bad, "f")


class TestRequireInt:
    def test_accepts_int(self):
        assert v.require_int(7, "n") == 7

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            v.require_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            v.require_int(3.0, "n")
