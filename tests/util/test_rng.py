"""Unit tests for repro.util.rng."""

from repro.util.rng import RngStream, spawn_rngs


class TestRngStream:
    def test_same_path_same_stream(self):
        a = RngStream(42).child("node0").child("core1").generator()
        b = RngStream(42).child("node0").child("core1").generator()
        assert a.random() == b.random()

    def test_different_names_differ(self):
        a = RngStream(42).child("core0").generator()
        b = RngStream(42).child("core1").generator()
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = RngStream(1).child("x").generator()
        b = RngStream(2).child("x").generator()
        assert a.random() != b.random()

    def test_order_independent(self):
        root = RngStream(7)
        first_then = root.child("a").generator().random()
        # Creating siblings in a different order must not perturb "a".
        root2 = RngStream(7)
        root2.child("zzz")
        root2.child("b")
        assert root2.child("a").generator().random() == first_then

    def test_nested_path_distinct_from_flat(self):
        flat = RngStream(3).child("a/b").generator().random()
        nested = RngStream(3).child("a").child("b").generator().random()
        # Different derivations should not alias (the separator is part of the key).
        assert flat == nested  # "a/b" and "a"/"b" hash to the same joined path
        # ...which is intentional: paths are joined with "/" so string and
        # nested forms may be used interchangeably in specs.


class TestSpawnRngs:
    def test_one_generator_per_name(self):
        gens = spawn_rngs(11, ["alpha", "beta"])
        assert set(gens) == {"alpha", "beta"}
        assert gens["alpha"].random() != gens["beta"].random()

    def test_reproducible(self):
        a = spawn_rngs(5, ["x"])["x"].normal()
        b = spawn_rngs(5, ["x"])["x"].normal()
        assert a == b
