"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import TextTable


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["N", "GFLOPS"], title="demo")
        t.add_row(1024, 59.2)
        t.add_row(46000, 196.7)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "GFLOPS" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "196.7" in lines[4]

    def test_float_formatting(self):
        t = TextTable(["x"])
        t.add_row(0.123456789)
        assert "0.1235" in t.render()

    def test_extend(self):
        t = TextTable(["a", "b"])
        t.extend([(1, 2), (3, 4)])
        assert len(t.rows) == 2

    def test_wrong_arity_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_str_equals_render(self):
        t = TextTable(["h"])
        t.add_row("v")
        assert str(t) == t.render()

    def test_none_and_bool_cells(self):
        t = TextTable(["a", "b"])
        t.add_row(None, True)
        out = t.render()
        assert "None" in out and "True" in out
