"""Unit tests for repro.util.units."""

import pytest

from repro.util import units


class TestWorkloadFormulas:
    def test_dgemm_flops_basic(self):
        assert units.dgemm_flops(10, 20, 30) == 2.0 * 10 * 20 * 30

    def test_dgemm_flops_zero_dimension(self):
        assert units.dgemm_flops(0, 5, 5) == 0.0

    def test_dgemm_flops_paper_example(self):
        # Section V.A: N=10000 square DGEMM is "about 2*N^3 = 2000 G" flops.
        assert units.dgemm_flops(10_000, 10_000, 10_000) == pytest.approx(2000 * units.GFLOP)

    def test_dgemm_flops_rejects_negative(self):
        with pytest.raises(ValueError):
            units.dgemm_flops(-1, 2, 3)

    def test_lu_flops_leading_term(self):
        n = 10_000
        assert units.lu_flops(n) == pytest.approx((2 / 3) * n**3, rel=1e-3)

    def test_lu_flops_small(self):
        assert units.lu_flops(1) == pytest.approx(2 / 3 + 2)

    def test_lu_flops_rejects_negative(self):
        with pytest.raises(ValueError):
            units.lu_flops(-5)

    def test_matrix_bytes_double(self):
        # Section V.A: one 10000x10000 double matrix is 800 MB.
        assert units.matrix_bytes(10_000, 10_000) == pytest.approx(800 * units.MB)

    def test_matrix_bytes_custom_element(self):
        assert units.matrix_bytes(4, 4, elem_bytes=4) == 64

    def test_matrix_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            units.matrix_bytes(-1, 3)


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert units.fmt_bytes(800 * units.MB) == "800 MB"
        assert units.fmt_bytes(1.5 * units.GB) == "1.5 GB"
        assert units.fmt_bytes(12) == "12 B"

    def test_fmt_rate_gflops(self):
        assert units.fmt_rate(196.7 * units.GFLOPS) == "196.7 GFLOPS"

    def test_fmt_rate_tflops(self):
        assert units.fmt_rate(563.1 * units.TFLOPS) == "563.1 TFLOPS"

    def test_fmt_flops(self):
        assert units.fmt_flops(2000 * units.GFLOP) == "2 Tflop"

    def test_fmt_time_ranges(self):
        assert units.fmt_time(5e-10).endswith("ns")
        assert units.fmt_time(5e-6).endswith("us")
        assert units.fmt_time(5e-3).endswith("ms")
        assert units.fmt_time(5).endswith("s")
        assert units.fmt_time(600).endswith("min")
        assert units.fmt_time(7201).endswith("h")

    def test_fmt_time_negative(self):
        assert units.fmt_time(-2.0).startswith("-")
