"""Acceptance: an unchanged rerun of a real sweep is served from the cache.

The issue's contract: rerunning a sweep with no code or argument changes
must skip >= 90% of scenario evaluations, and the skip must be *observable*
— the exec layer mirrors its hit/miss counters into the ambient telemetry
registry, which is what this test asserts on (not internal state).
"""

from __future__ import annotations

from repro import exec as exec_policy
from repro import obs
from repro.bench.linpack_sweep import fig9_linpack_sweep

SIZES = (5750, 11500)
CONFIGS = ("cpu", "acmlg", "acmlg_both")


def _sweep(cache_dir):
    telemetry = obs.Telemetry()
    policy = exec_policy.ExecutionPolicy(jobs=1, cache=True, cache_dir=cache_dir)
    with obs.use(telemetry), exec_policy.use(policy):
        data = fig9_linpack_sweep(sizes=SIZES, configs=CONFIGS)
    return data, telemetry.metrics


def test_unchanged_rerun_skips_at_least_90_percent(tmp_path):
    cold_data, cold_metrics = _sweep(tmp_path)
    assert cold_metrics.counter("exec.cache.misses").value() == len(SIZES) * len(CONFIGS)
    assert cold_metrics.counter("exec.tasks").value() == len(SIZES) * len(CONFIGS)

    warm_data, warm_metrics = _sweep(tmp_path)
    hits = warm_metrics.counter("exec.cache.hits").value()
    misses = warm_metrics.counter("exec.cache.misses").value()
    assert hits / (hits + misses) >= 0.9
    assert warm_metrics.counter("exec.tasks").value() == 0  # nothing recomputed

    # Served-from-disk figures are the figures, bit for bit.
    assert warm_data.series == cold_data.series
