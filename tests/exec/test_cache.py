"""The content-addressed result cache: keys, round-trips, invalidation."""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path

import pytest

from repro.exec import cache as cache_mod
from repro.exec.cache import ResultCache, canonical_json, code_version, scenario_key


class TestScenarioKey:
    def test_deterministic(self):
        args = dict(configuration="acmlg_both", n=23000, seed=7)
        assert scenario_key("fig9.point", args) == scenario_key("fig9.point", dict(args))

    def test_key_order_irrelevant(self):
        assert scenario_key("t", dict(a=1, b=2)) == scenario_key("t", dict(b=2, a=1))

    def test_task_name_separates_namespaces(self):
        args = dict(n=1000)
        assert scenario_key("fig9.point", args) != scenario_key("fig9.batch", args)

    def test_args_change_key(self):
        assert scenario_key("t", dict(n=1000)) != scenario_key("t", dict(n=1001))

    def test_code_version_invalidates(self, monkeypatch):
        args = dict(n=1000)
        before = scenario_key("t", args)
        monkeypatch.setattr(cache_mod, "_CODE_VERSION", "0" * 16)
        assert scenario_key("t", args) != before

    def test_code_version_is_cached_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_dataclass_and_enum_and_path(self):
        @dataclasses.dataclass(frozen=True)
        class Point:
            x: int
            y: int

        class Kind(enum.Enum):
            A = "a"

        rendered = canonical_json({"p": Point(1, 2), "k": Kind.A, "d": Path("x/y")})
        assert json.loads(rendered) == {"p": {"x": 1, "y": 2}, "k": "a", "d": "x/y"}

    def test_numpy_scalars_and_arrays(self):
        np = pytest.importorskip("numpy")
        rendered = canonical_json({"s": np.float64(1.5), "v": np.array([1, 2])})
        assert json.loads(rendered) == {"s": 1.5, "v": [1, 2]}

    def test_unencodable_raises(self):
        with pytest.raises(TypeError, match="cannot canonicalise"):
            canonical_json({"f": lambda: None})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("t", dict(n=1))
        assert cache.get(key) == (False, None)
        cache.put(key, 123.25, task="t", args=dict(n=1))
        assert key in cache
        assert cache.get(key) == (True, 123.25)

    def test_structured_value_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"divergences": [], "checked": ["e5540/clean"]}
        key = scenario_key("verify.crossval.case", dict(case="x"))
        cache.put(key, value)
        assert cache.get(key) == (True, value)

    def test_two_level_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("t", dict(n=2))
        path = cache.put(key, 1.0)
        assert path == tmp_path / key[:2] / f"{key}.json"

    def test_entry_is_self_describing(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("fig9.point", dict(n=3))
        path = cache.put(key, 9.5, task="fig9.point", args=dict(n=3))
        entry = json.loads(path.read_text())
        assert entry["task"] == "fig9.point"
        assert entry["args"] == {"n": 3}
        assert entry["value"] == 9.5
        assert entry["code"] == code_version()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("t", dict(n=4))
        path = cache.put(key, 1.0)
        path.write_text("{not json")
        assert cache.get(key) == (False, None)
        # ...and can be overwritten cleanly.
        cache.put(key, 2.0)
        assert cache.get(key) == (True, 2.0)

    def test_entry_missing_value_field_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("t", dict(n=5))
        path = cache.put(key, 1.0)
        path.write_text('{"format": 1}')
        assert cache.get(key) == (False, None)
