"""run_tasks / evaluate_points: ordering, determinism, serial fallbacks."""

from __future__ import annotations

import pytest

from repro import obs
from repro.exec import ExecutionPolicy, evaluate_points, run_tasks, use
from repro.exec import pool as pool_mod
from repro.obs.ledger import RunLedger, load_run
from repro.util.rng import RngStream


def square_plus(x: int, offset: int = 0) -> int:
    return x * x + offset


def traced_square(x: int) -> int:
    """Emits a span + counter through the ambient telemetry (worker-side)."""
    telemetry = obs.current()
    if telemetry is not None:
        telemetry.sink.complete("task", f"x{x}", float(x), float(x) + 1.0)
        telemetry.metrics.counter("tasks_run").inc()
    return x * x


def seeded_draw(seed: int) -> float:
    """Deterministic per-task value from the task's own seed."""
    return float(RngStream(seed).child("task").generator().random())


def boom(x: int) -> int:
    raise ValueError(f"boom {x}")


class TestRunTasks:
    def test_empty(self):
        assert run_tasks(square_plus, []) == []

    def test_serial_order(self):
        calls = [dict(x=x) for x in range(8)]
        assert run_tasks(square_plus, calls) == [x * x for x in range(8)]

    def test_parallel_order_matches_serial(self):
        calls = [dict(x=x, offset=1) for x in range(16)]
        serial = run_tasks(square_plus, calls, policy=ExecutionPolicy(jobs=1))
        parallel = run_tasks(square_plus, calls, policy=ExecutionPolicy(jobs=2))
        assert parallel == serial == [x * x + 1 for x in range(16)]

    def test_parallel_seeded_draws_bit_identical(self):
        calls = [dict(seed=s) for s in range(12)]
        serial = run_tasks(seeded_draw, calls, policy=ExecutionPolicy(jobs=1))
        parallel = run_tasks(seeded_draw, calls, policy=ExecutionPolicy(jobs=2))
        assert parallel == serial  # float equality on purpose: bit-identity

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="boom 0"):
            run_tasks(boom, [dict(x=0), dict(x=1)], policy=ExecutionPolicy(jobs=1))
        with pytest.raises(ValueError, match="boom"):
            run_tasks(boom, [dict(x=0), dict(x=1)], policy=ExecutionPolicy(jobs=2))

    def test_counts_tasks(self):
        policy = ExecutionPolicy(jobs=1)
        run_tasks(square_plus, [dict(x=1), dict(x=2)], policy=policy)
        assert policy.stats.tasks == 2
        assert policy.stats.parallel_tasks == 0

    def test_parallel_counts_parallel_tasks(self):
        policy = ExecutionPolicy(jobs=2)
        run_tasks(square_plus, [dict(x=1), dict(x=2)], policy=policy)
        assert policy.stats.parallel_tasks == 2

    def test_in_memory_telemetry_forces_serial(self):
        # A plain RecordingSink has no shard_dir: worker spans could not be
        # merged back, so the pool falls back to the serial path (not a drop).
        policy = ExecutionPolicy(jobs=4)
        with obs.use(obs.Telemetry()):
            result = run_tasks(square_plus, [dict(x=x) for x in range(4)], policy=policy)
        assert result == [0, 1, 4, 9]
        assert policy.stats.tasks == 4
        assert policy.stats.parallel_tasks == 0  # spans/metrics cannot merge back

    def test_shard_backed_telemetry_stays_parallel(self, tmp_path):
        ledger = RunLedger.open(
            "pool-test", root=tmp_path / "runs",
            flush_records=1, flush_interval=None, fsync=False,
        )
        policy = ExecutionPolicy(jobs=2)
        with obs.use(ledger.telemetry):
            result = run_tasks(
                traced_square, [dict(x=x) for x in range(4)], policy=policy
            )
        assert result == [0, 1, 4, 9]
        assert policy.stats.parallel_tasks == 4  # no serial fallback

        shards = ledger.worker_shards()
        assert shards  # workers streamed their spans into the run directory
        counted = ledger.telemetry.metrics.scalar_summary()["exec.telemetry_shards"]
        assert counted == len(shards)

        ledger.finish()
        view = load_run(ledger.directory)
        worker_spans = [s for s in view.spans if s.track.startswith("worker-")]
        assert sorted(s.name for s in worker_spans) == ["x0", "x1", "x2", "x3"]
        assert view.worker_metrics  # metrics-worker-<pid>.json snapshots parsed
        assert any(
            "tasks_run" in snapshot for snapshot in view.worker_metrics.values()
        )

    def test_shard_counter_not_double_counted(self, tmp_path):
        ledger = RunLedger.open(
            "pool-recount", root=tmp_path / "runs",
            flush_records=1, flush_interval=None, fsync=False,
        )
        policy = ExecutionPolicy(jobs=2)
        with obs.use(ledger.telemetry):
            run_tasks(traced_square, [dict(x=1), dict(x=2)], policy=policy)
            first = ledger.telemetry.metrics.scalar_summary()["exec.telemetry_shards"]
            run_tasks(traced_square, [dict(x=3), dict(x=4)], policy=policy)
            second = ledger.telemetry.metrics.scalar_summary()["exec.telemetry_shards"]
        # Only shards that newly appeared are counted on the second join.
        assert second == len(ledger.worker_shards())
        assert second >= first
        ledger.finish()

    def test_in_worker_forces_serial(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_IN_WORKER", True)
        policy = ExecutionPolicy(jobs=4)
        assert run_tasks(square_plus, [dict(x=3)], policy=policy) == [9]
        assert policy.stats.parallel_tasks == 0

    def test_single_call_stays_serial(self):
        policy = ExecutionPolicy(jobs=4)
        run_tasks(square_plus, [dict(x=2)], policy=policy)
        assert policy.stats.parallel_tasks == 0  # jobs clamped to len(calls)


class TestEvaluatePoints:
    def test_no_cache_degrades_to_run_tasks(self):
        policy = ExecutionPolicy(jobs=1, cache=False)
        out = evaluate_points("t", square_plus, [dict(x=2)], policy=policy)
        assert out == [4]
        assert policy.stats.cache_lookups == 0

    def test_miss_then_hit(self, tmp_path):
        points = [dict(x=x) for x in range(5)]
        cold = ExecutionPolicy(jobs=1, cache=True, cache_dir=tmp_path)
        first = evaluate_points("t", square_plus, points, policy=cold)
        assert cold.stats.cache_misses == 5 and cold.stats.cache_hits == 0

        warm = ExecutionPolicy(jobs=1, cache=True, cache_dir=tmp_path)
        second = evaluate_points("t", square_plus, points, policy=warm)
        assert second == first == [x * x for x in range(5)]
        assert warm.stats.cache_hits == 5 and warm.stats.cache_misses == 0
        assert warm.stats.tasks == 0  # nothing re-ran

    def test_partial_hits_preserve_order(self, tmp_path):
        policy = ExecutionPolicy(jobs=1, cache=True, cache_dir=tmp_path)
        evaluate_points("t", square_plus, [dict(x=1), dict(x=3)], policy=policy)
        out = evaluate_points(
            "t", square_plus, [dict(x=x) for x in range(5)], policy=policy
        )
        assert out == [0, 1, 4, 9, 16]

    def test_ambient_policy_via_use(self, tmp_path):
        policy = ExecutionPolicy(jobs=1, cache=True, cache_dir=tmp_path)
        with use(policy):
            evaluate_points("t", square_plus, [dict(x=7)])
            evaluate_points("t", square_plus, [dict(x=7)])
        assert policy.stats.cache_hits == 1
        assert policy.stats.cache_misses == 1
