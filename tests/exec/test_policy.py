"""ExecutionPolicy: ambient stack semantics, stats, telemetry mirroring."""

from __future__ import annotations

import os

from repro import obs
from repro.exec import DEFAULT_CACHE_DIR, ExecutionPolicy, SERIAL_POLICY, current, use


class TestAmbientStack:
    def test_default_is_serial_uncached(self):
        policy = current()
        assert policy is SERIAL_POLICY
        assert policy.resolved_jobs == 1
        assert policy.cache is False
        assert policy.vectorize is False

    def test_use_installs_and_restores(self):
        inner = ExecutionPolicy(jobs=2)
        assert current() is SERIAL_POLICY
        with use(inner) as active:
            assert active is inner
            assert current() is inner
        assert current() is SERIAL_POLICY

    def test_use_nests(self):
        outer, inner = ExecutionPolicy(jobs=2), ExecutionPolicy(jobs=3)
        with use(outer):
            with use(inner):
                assert current() is inner
            assert current() is outer

    def test_use_none_is_noop(self):
        with use(None) as active:
            assert active is SERIAL_POLICY

    def test_restores_after_exception(self):
        try:
            with use(ExecutionPolicy(jobs=2)):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert current() is SERIAL_POLICY


class TestResolution:
    def test_jobs_none_means_all_cores(self):
        assert ExecutionPolicy(jobs=None).resolved_jobs == (os.cpu_count() or 1)

    def test_jobs_floor_is_one(self):
        assert ExecutionPolicy(jobs=0).resolved_jobs == 1
        assert ExecutionPolicy(jobs=-3).resolved_jobs == 1

    def test_default_cache_dir(self):
        assert ExecutionPolicy().resolved_cache_dir == DEFAULT_CACHE_DIR

    def test_cache_dir_override(self, tmp_path):
        assert ExecutionPolicy(cache_dir=tmp_path).resolved_cache_dir == tmp_path


class TestStats:
    def test_hit_rate(self):
        policy = ExecutionPolicy()
        assert policy.stats.hit_rate == 0.0
        policy.stats.count_cache(True)
        policy.stats.count_cache(True)
        policy.stats.count_cache(False)
        assert policy.stats.cache_lookups == 3
        assert abs(policy.stats.hit_rate - 2 / 3) < 1e-12

    def test_summary_line_cache_on(self):
        policy = ExecutionPolicy(jobs=4, cache=True)
        policy.stats.count_cache(True)
        line = policy.summary_line()
        assert line.startswith("exec: jobs=4 cache=on hits=1 misses=0")

    def test_summary_line_cache_off(self):
        assert "cache=off" in ExecutionPolicy(jobs=1).summary_line()

    def test_counters_mirrored_to_telemetry(self):
        telemetry = obs.Telemetry()
        policy = ExecutionPolicy()
        with obs.use(telemetry):
            policy.stats.count_task(parallel=False)
            policy.stats.count_cache(True)
            policy.stats.count_cache(False)
        metrics = telemetry.metrics
        assert metrics.counter("exec.tasks").value() == 1.0
        assert metrics.counter("exec.cache.hits").value() == 1.0
        assert metrics.counter("exec.cache.misses").value() == 1.0

    def test_no_telemetry_no_error(self):
        policy = ExecutionPolicy()
        policy.stats.count_task(parallel=True)
        policy.stats.count_cache(False)
        assert policy.stats.tasks == 1
