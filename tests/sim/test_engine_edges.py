"""Edge-case coverage for the DES kernel."""

import pytest

from repro.sim import Event, SimulationError, Simulator, Timeout


class TestRunUntilEvent:
    def test_triggered_but_unprocessed_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        assert sim.run(until=ev) == "x"

    def test_failed_awaited_event_raises(self):
        sim = Simulator()
        ev = sim.event()

        def failer():
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("boom"))

        sim.process(failer())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=ev)

    def test_run_until_process_returning_none(self):
        sim = Simulator()

        def quiet():
            yield sim.timeout(1.0)

        assert sim.run(until=sim.process(quiet())) is None


class TestTimeoutValues:
    def test_timeout_carries_value(self):
        sim = Simulator()

        def proc():
            return (yield sim.timeout(0.5, value={"k": 1}))

        assert sim.run(until=sim.process(proc())) == {"k": 1}

    def test_zero_delay_fires_now(self):
        sim = Simulator()
        fired = []
        sim.timeout(0.0).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]


class TestEventStates:
    def test_ok_before_trigger_raises(self):
        with pytest.raises(SimulationError):
            _ = Simulator().event().ok

    def test_processed_transitions(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered and not ev.processed
        ev.succeed(1)
        assert ev.triggered and not ev.processed
        sim.run()
        assert ev.processed and ev.ok

    def test_timeout_is_pretriggered(self):
        sim = Simulator()
        t = Timeout(sim, 5.0)
        assert t.triggered  # scheduled and value-bearing at creation
        assert not t.processed

    def test_generator_chain_return_values(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            return 21

        def outer():
            value = yield from inner()
            return value * 2

        assert sim.run(until=sim.process(outer())) == 42
