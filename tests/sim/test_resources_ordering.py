"""Deterministic ordering under contention at identical timestamps.

The parallel sweep contract (serial == parallel, bit for bit) only holds if
the DES kernel itself is deterministic when many processes contend for a
resource *at the same simulated instant*.  These tests pin the tie-breaking
rules: requests are granted in issue order, store getters are served in
arrival order, and channel transfers serialise in submission order — never
in heap-jitter or dict-iteration order.
"""

from __future__ import annotations

from repro.sim import Simulator
from repro.sim.resources import BandwidthChannel, Resource, Store


class TestResourceContentionOrdering:
    def test_same_instant_requests_grant_in_issue_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grants: list[int] = []

        def contender(i):
            # No prior delay: all ten requests are issued at t=0.
            req = res.request()
            yield req
            grants.append(i)
            yield sim.timeout(1.0)
            res.release(req)

        for i in range(10):
            sim.process(contender(i))
        sim.run()
        assert grants == list(range(10))

    def test_release_and_request_same_instant_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        order: list[str] = []

        def holder(name, hold):
            req = res.request()
            yield req
            order.append(f"grant:{name}")
            yield sim.timeout(hold)
            res.release(req)
            order.append(f"release:{name}")

        # a and b hold; c, d, e queue at t=0.  a and b both release at t=1,
        # freeing two units in the same instant — c then d must be granted,
        # in their original arrival order, before e.
        sim.process(holder("a", 1.0))
        sim.process(holder("b", 1.0))
        sim.process(holder("c", 1.0))
        sim.process(holder("d", 1.0))
        sim.process(holder("e", 1.0))
        sim.run()
        grants = [entry for entry in order if entry.startswith("grant:")]
        assert grants == ["grant:a", "grant:b", "grant:c", "grant:d", "grant:e"]

    def test_cancelled_waiter_does_not_disturb_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grants: list[str] = []
        first = res.request()
        second = res.request()
        third = res.request()
        res.release(second)  # cancels the still-waiting request
        second_cb_fired = []
        second.callbacks.append(lambda e: second_cb_fired.append(e))

        def finish(name, req):
            yield req
            grants.append(name)
            res.release(req)

        sim.process(finish("first", first))
        sim.process(finish("third", third))
        sim.run()
        assert grants == ["first", "third"]
        assert not second_cb_fired

    def test_identical_runs_identical_schedules(self):
        def build_and_run():
            sim = Simulator()
            res = Resource(sim, capacity=3)
            trace: list[tuple[float, int]] = []

            def worker(i):
                for _ in range(3):
                    req = res.request()
                    yield req
                    trace.append((sim.now, i))
                    yield sim.timeout(0.5)
                    res.release(req)

            for i in range(8):
                sim.process(worker(i))
            sim.run()
            return trace, sim.events_processed

        assert build_and_run() == build_and_run()


class TestStoreOrdering:
    def test_simultaneous_getters_served_in_arrival_order(self):
        sim = Simulator()
        store = Store(sim)
        received: list[tuple[int, object]] = []

        def getter(i):
            item = yield store.get()
            received.append((i, item))

        def producer():
            yield sim.timeout(1.0)
            for item in ("x", "y", "z"):
                yield store.put(item)

        for i in range(3):
            sim.process(getter(i))
        sim.process(producer())
        sim.run()
        assert received == [(0, "x"), (1, "y"), (2, "z")]

    def test_bounded_putters_unblock_in_arrival_order(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        stored: list[int] = []

        def putter(i):
            yield store.put(i)
            stored.append(i)

        def drain():
            yield sim.timeout(1.0)
            for _ in range(4):
                yield store.get()

        for i in range(4):
            sim.process(putter(i))
        sim.process(drain())
        sim.run()
        assert stored == [0, 1, 2, 3]


class TestBandwidthChannelOrdering:
    def test_same_instant_transfers_serialise_in_submission_order(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=100.0, latency=0.0)
        done: list[tuple[float, int]] = []

        def sender(i, nbytes):
            yield link.transfer(nbytes)
            done.append((sim.now, i))

        # All submitted at t=0; each 100-byte transfer takes 1s of pipe time.
        for i in range(4):
            sim.process(sender(i, 100.0))
        sim.run()
        assert done == [(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]
        assert link.transfer_count == 4
        assert link.busy_time == 4.0
