"""Unit tests for repro.sim.trace."""

import pytest

from repro.sim import Simulator, Tracer


def make_pipeline_trace():
    """Two actors: T0 does input then EO; T1's input overlaps T0's EO."""
    sim = Simulator()
    tracer = Tracer(sim)

    def t0():
        tracer.begin("T0", "input")
        yield sim.timeout(1.0)
        tracer.end("T0", "input")
        tracer.begin("T0", "eo")
        yield sim.timeout(2.0)
        tracer.end("T0", "eo")

    def t1():
        yield sim.timeout(1.0)
        tracer.begin("T1", "input")
        yield sim.timeout(1.0)
        tracer.end("T1", "input")

    sim.process(t0())
    sim.process(t1())
    sim.run()
    return sim, tracer


class TestTracer:
    def test_intervals_paired(self):
        _, tracer = make_pipeline_trace()
        spans = tracer.intervals()
        assert len(spans) == 3
        t0_input = tracer.intervals(actor="T0", phase="input")[0]
        assert (t0_input.start, t0_input.end) == (0.0, 1.0)
        assert t0_input.duration == 1.0

    def test_overlap_detection(self):
        _, tracer = make_pipeline_trace()
        t0_eo = tracer.intervals(actor="T0", phase="eo")[0]
        t1_input = tracer.intervals(actor="T1", phase="input")[0]
        assert t0_eo.overlaps(t1_input)

    def test_no_overlap_for_adjacent(self):
        _, tracer = make_pipeline_trace()
        t0_input = tracer.intervals(actor="T0", phase="input")[0]
        t0_eo = tracer.intervals(actor="T0", phase="eo")[0]
        assert not t0_input.overlaps(t0_eo)

    def test_actors_in_first_appearance_order(self):
        _, tracer = make_pipeline_trace()
        assert tracer.actors() == ["T0", "T1"]

    def test_double_begin_rejected(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.begin("A", "x")
        with pytest.raises(ValueError):
            tracer.begin("A", "x")

    def test_end_without_begin_rejected(self):
        tracer = Tracer(Simulator())
        with pytest.raises(ValueError):
            tracer.end("A", "x")

    def test_marks_filterable(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.mark("A", "tick", step=1)
        tracer.mark("B", "tick", step=2)
        got = list(tracer.marks(actor="B"))
        assert len(got) == 1 and got[0].data["step"] == 2

    def test_interval_data_merged(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.begin("A", "x", task="T0")
        tracer.end("A", "x", bytes=100)
        span = tracer.intervals()[0]
        assert span.data == {"task": "T0", "bytes": 100}

    def test_schedule_table(self):
        _, tracer = make_pipeline_trace()
        table = tracer.schedule_table(time_step=1.0, phases=["input", "eo"])
        assert table[0] == {"input": "T0", "eo": ""}
        assert table[1] == {"input": "T1", "eo": "T0"}
        assert table[2] == {"input": "", "eo": "T0"}

    def test_schedule_table_empty(self):
        tracer = Tracer(Simulator())
        assert tracer.schedule_table(1.0, ["x"]) == []

    def test_schedule_table_trailing_partial_step_gets_a_row(self):
        """Regression: the horizon must be quantised with a ceiling.

        A span ending at 1.05 s with 0.5 s steps spills into a third row;
        int(round(...)) used to truncate it to 2 and drop the tail.
        """
        sim = Simulator()
        tracer = Tracer(sim)

        def proc():
            tracer.begin("T0", "eo")
            yield sim.timeout(1.05)
            tracer.end("T0", "eo")

        sim.process(proc())
        sim.run()
        table = tracer.schedule_table(time_step=0.5, phases=["eo"])
        assert len(table) == 3
        assert table[2] == {"eo": "T0"}

    def test_schedule_table_exact_multiple_has_no_phantom_row(self):
        _, tracer = make_pipeline_trace()  # horizon 3.0
        assert len(tracer.schedule_table(time_step=0.5, phases=["eo"])) == 6


class TestSinkBridge:
    """Tracer records mirror into an attached repro.obs sink."""

    def make_sink(self):
        from repro.obs import RecordingSink

        return RecordingSink()

    def test_begin_end_mirror_as_spans(self):
        sink = self.make_sink()
        sim = Simulator()
        tracer = Tracer(sim, sink=sink, group="e0")

        def proc():
            tracer.begin("CT", "input", task=0)
            yield sim.timeout(1.0)
            tracer.end("CT", "input")

        sim.process(proc())
        sim.run()
        (span,) = sink.spans
        assert (span.track, span.name, span.start, span.end) == ("e0/CT", "input", 0.0, 1.0)
        assert span.args == {"task": 0}

    def test_marks_mirror_as_instants(self):
        sink = self.make_sink()
        tracer = Tracer(Simulator(), sink=sink)
        tracer.mark("A", "tick", step=3)
        (inst,) = sink.instants
        assert (inst.track, inst.name, inst.ts) == ("sim/A", "tick", 0.0)
        assert inst.args == {"step": 3}

    def test_attach_sink_does_not_replay(self):
        sim, tracer = make_pipeline_trace()
        sink = self.make_sink()
        tracer.attach_sink(sink, group="late")
        assert len(sink.spans) == 0  # ring buffer (deque), not a list
        tracer.mark("A", "after")
        assert sink.instants[0].track == "late/A"

    def test_chrome_trace_export(self):
        import json

        _, tracer = make_pipeline_trace()
        tracer.mark("T0", "done")
        events = json.loads(json.dumps(tracer.chrome_trace()))
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"} and "X" in phases and "i" in phases
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == 3  # the three paired intervals
        # One pid (group "sim"), one tid per actor.
        assert len({e["pid"] for e in x_events}) == 1
        assert len({e["tid"] for e in x_events}) == 2
