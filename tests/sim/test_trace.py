"""Unit tests for repro.sim.trace."""

import pytest

from repro.sim import Simulator, Tracer


def make_pipeline_trace():
    """Two actors: T0 does input then EO; T1's input overlaps T0's EO."""
    sim = Simulator()
    tracer = Tracer(sim)

    def t0():
        tracer.begin("T0", "input")
        yield sim.timeout(1.0)
        tracer.end("T0", "input")
        tracer.begin("T0", "eo")
        yield sim.timeout(2.0)
        tracer.end("T0", "eo")

    def t1():
        yield sim.timeout(1.0)
        tracer.begin("T1", "input")
        yield sim.timeout(1.0)
        tracer.end("T1", "input")

    sim.process(t0())
    sim.process(t1())
    sim.run()
    return sim, tracer


class TestTracer:
    def test_intervals_paired(self):
        _, tracer = make_pipeline_trace()
        spans = tracer.intervals()
        assert len(spans) == 3
        t0_input = tracer.intervals(actor="T0", phase="input")[0]
        assert (t0_input.start, t0_input.end) == (0.0, 1.0)
        assert t0_input.duration == 1.0

    def test_overlap_detection(self):
        _, tracer = make_pipeline_trace()
        t0_eo = tracer.intervals(actor="T0", phase="eo")[0]
        t1_input = tracer.intervals(actor="T1", phase="input")[0]
        assert t0_eo.overlaps(t1_input)

    def test_no_overlap_for_adjacent(self):
        _, tracer = make_pipeline_trace()
        t0_input = tracer.intervals(actor="T0", phase="input")[0]
        t0_eo = tracer.intervals(actor="T0", phase="eo")[0]
        assert not t0_input.overlaps(t0_eo)

    def test_actors_in_first_appearance_order(self):
        _, tracer = make_pipeline_trace()
        assert tracer.actors() == ["T0", "T1"]

    def test_double_begin_rejected(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.begin("A", "x")
        with pytest.raises(ValueError):
            tracer.begin("A", "x")

    def test_end_without_begin_rejected(self):
        tracer = Tracer(Simulator())
        with pytest.raises(ValueError):
            tracer.end("A", "x")

    def test_marks_filterable(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.mark("A", "tick", step=1)
        tracer.mark("B", "tick", step=2)
        got = list(tracer.marks(actor="B"))
        assert len(got) == 1 and got[0].data["step"] == 2

    def test_interval_data_merged(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.begin("A", "x", task="T0")
        tracer.end("A", "x", bytes=100)
        span = tracer.intervals()[0]
        assert span.data == {"task": "T0", "bytes": 100}

    def test_schedule_table(self):
        _, tracer = make_pipeline_trace()
        table = tracer.schedule_table(time_step=1.0, phases=["input", "eo"])
        assert table[0] == {"input": "T0", "eo": ""}
        assert table[1] == {"input": "T1", "eo": "T0"}
        assert table[2] == {"input": "", "eo": "T0"}

    def test_schedule_table_empty(self):
        tracer = Tracer(Simulator())
        assert tracer.schedule_table(1.0, ["x"]) == []
