"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.sim import Simulator, Tracer
from repro.sim.gantt import render_gantt, render_tracer
from repro.sim.trace import Interval


def make_intervals():
    return [
        Interval("T0", "input", 0.0, 1.0),
        Interval("T0", "eo", 1.0, 3.0),
        Interval("T1", "input", 1.0, 2.0),
    ]


class TestRenderGantt:
    def test_has_one_lane_per_actor_phase(self):
        out = render_gantt(make_intervals())
        lines = out.splitlines()
        assert any(line.startswith("T0.input") for line in lines)
        assert any(line.startswith("T0.eo") for line in lines)
        assert any(line.startswith("T1.input") for line in lines)

    def test_legend_lists_phases(self):
        out = render_gantt(make_intervals())
        assert "legend:" in out
        assert "input" in out and "eo" in out

    def test_overlap_visible(self):
        """T1.input must paint cells in the same columns as T0.eo."""
        out = render_gantt(make_intervals(), width=30)
        lines = {line.split("|")[0].strip(): line.split("|")[1] for line in out.splitlines() if "|" in line and "." in line.split("|")[0]}
        eo = lines["T0.eo"]
        t1 = lines["T1.input"]
        both = [i for i, (a, b) in enumerate(zip(eo, t1)) if a != " " and b != " "]
        assert both, "expected visible overlap between T0.eo and T1.input"

    def test_empty(self):
        assert render_gantt([]) == "(no intervals)"

    def test_axis_shows_bounds(self):
        out = render_gantt(make_intervals(), width=40)
        assert "0" in out.splitlines()[-2]
        assert "3" in out.splitlines()[-2]

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            render_gantt([Interval("a", "x", 1.0, 1.0)])

    def test_render_tracer_roundtrip(self):
        sim = Simulator()
        tracer = Tracer(sim)

        def proc():
            tracer.begin("gpu", "kernel")
            yield sim.timeout(2.0)
            tracer.end("gpu", "kernel")

        sim.run(until=sim.process(proc()))
        out = render_tracer(tracer)
        assert "gpu.kernel" in out
