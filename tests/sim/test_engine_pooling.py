"""The kernel's internal event pool: recycling must be invisible."""

from __future__ import annotations

from repro.sim import Simulator
from repro.sim.engine import AllOf, Event


class TestEventPool:
    def test_internal_events_are_recycled(self):
        sim = Simulator()
        first = sim._internal_event()
        first.succeed("a")
        sim.run()
        assert first.processed
        second = sim._internal_event()
        assert second is first  # same object, recycled...
        assert not second.processed  # ...but fully reset
        assert second.callbacks == []
        second.succeed("b")
        sim.run()
        assert second.value == "b"

    def test_user_events_never_pooled(self):
        sim = Simulator()
        user = Event(sim)
        user.succeed(1)
        sim.run()
        assert sim._internal_event() is not user

    def test_relay_heavy_run_is_deterministic(self):
        def build():
            sim = Simulator()
            done = sim.timeout(0.0)
            log: list[tuple[float, int]] = []

            def proc(i):
                # Re-yielding an already-processed event exercises the pooled
                # relay path on every iteration.
                yield sim.timeout(0.1 * (i + 1))
                for _ in range(50):
                    yield done
                log.append((sim.now, i))

            for i in range(6):
                sim.process(proc(i))
            sim.run()
            return log, sim.events_processed

        assert build() == build()

    def test_failure_still_propagates_through_pooled_relay(self):
        sim = Simulator()
        caught: list[Exception] = []

        def proc():
            bad = Event(sim)
            bad.fail(RuntimeError("expected"))
            try:
                yield bad
            except RuntimeError as error:
                caught.append(error)

        sim.process(proc())
        sim.run()
        assert len(caught) == 1


class TestAllOfCounter:
    def test_allof_with_preprocessed_events(self):
        sim = Simulator()
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        sim.run()  # both already processed before the barrier exists
        barrier = AllOf(sim, [a, b])
        sim.run()
        assert barrier.processed
        assert barrier.value == ["a", "b"]

    def test_allof_mixed_pending_and_processed(self):
        sim = Simulator()
        a = sim.timeout(1.0, value="a")
        sim.run()
        b = sim.timeout(1.0, value="b")
        barrier = AllOf(sim, [a, b])
        sim.run()
        assert barrier.value == ["a", "b"]

    def test_allof_empty(self):
        sim = Simulator()
        barrier = AllOf(sim, [])
        sim.run()
        assert barrier.processed
