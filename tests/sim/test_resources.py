"""Unit tests for repro.sim.resources."""

import pytest

from repro.sim import BandwidthChannel, Resource, Simulator, Store
from repro.sim.engine import SimulationError


class TestResource:
    def test_mutex_serialises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            req = res.request()
            yield req
            log.append((name, "in", sim.now))
            yield sim.timeout(hold)
            res.release(req)
            log.append((name, "out", sim.now))

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 3.0))
        sim.run()
        assert log == [("a", "in", 0.0), ("a", "out", 2.0), ("b", "in", 2.0), ("b", "out", 5.0)]

    def test_capacity_two_admits_two(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        entered = []

        def worker(name):
            req = res.request()
            yield req
            entered.append((name, sim.now))
            yield sim.timeout(1.0)
            res.release(req)

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, arrive):
            yield sim.timeout(arrive)
            req = res.request()
            yield req
            order.append(name)
            yield sim.timeout(10.0)
            res.release(req)

        sim.process(worker("first", 0.0))
        sim.process(worker("second", 1.0))
        sim.process(worker("third", 2.0))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_context_manager_releases(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def worker():
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)
            return res.in_use

        assert sim.run(until=sim.process(worker())) == 0

    def test_release_waiting_request_cancels(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        held = res.request()  # granted immediately
        waiting = res.request()
        assert res.queue_length == 1
        res.release(waiting)  # cancel, not an error
        assert res.queue_length == 0
        res.release(held)

    def test_release_unknown_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        foreign = Resource(sim, capacity=1).request()
        with pytest.raises(SimulationError):
            res.release(foreign)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_counters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r1 = res.request()
        res.request()
        assert res.in_use == 1
        assert res.queue_length == 1
        res.release(r1)
        assert res.in_use == 1  # the waiter got promoted
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")

        def getter():
            return (yield store.get())

        assert sim.run(until=sim.process(getter())) == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        sim.process(producer())
        assert sim.run(until=sim.process(consumer())) == ("late", 3.0)

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        sim.run(until=sim.process(consumer()))
        assert got == [0, 1, 2]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put("a")
            events.append(("a stored", sim.now))
            yield store.put("b")
            events.append(("b stored", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            return item

        sim.process(producer())
        assert sim.run(until=sim.process(consumer())) == "a"
        sim.run()
        assert events == [("a stored", 0.0), ("b stored", 5.0)]

    def test_len_and_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        store.put("y")
        assert len(store) == 2
        assert store.items == ("x", "y")

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Store(Simulator(), capacity=0)

    def test_waiting_getter_gets_direct_handoff(self):
        sim = Simulator()
        store = Store(sim)

        def consumer():
            return (yield store.get())

        p = sim.process(consumer())
        sim.run(until=1.0)
        store.put("direct")
        assert sim.run(until=p) == "direct"
        assert len(store) == 0


class TestBandwidthChannel:
    def test_duration_formula(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=500e6, latency=0.0)
        # Section V.A: 800 MB over 500 MB/s = 1.6 s.
        assert link.transfer_duration(800e6) == pytest.approx(1.6)

    def test_latency_added(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=1e9, latency=1.2e-6)
        assert link.transfer_duration(0) == pytest.approx(1.2e-6)

    def test_transfer_completes_at_right_time(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=100.0)

        def mover():
            yield link.transfer(250.0)
            return sim.now

        assert sim.run(until=sim.process(mover())) == pytest.approx(2.5)

    def test_fifo_serialisation(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=100.0)
        ends = []

        def mover(n):
            yield link.transfer(n)
            ends.append(sim.now)

        sim.process(mover(100.0))  # 1 s
        sim.process(mover(100.0))  # queued: finishes at 2 s
        sim.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_backlog(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=100.0)
        link.transfer(300.0)
        assert link.backlog == pytest.approx(3.0)

    def test_counters_and_utilization(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=100.0)

        def mover():
            yield link.transfer(100.0)
            yield sim.timeout(1.0)  # idle second

        sim.run(until=sim.process(mover()))
        assert link.bytes_transferred == 100.0
        assert link.transfer_count == 1
        assert link.utilization() == pytest.approx(0.5)

    def test_zero_elapsed_utilization(self):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=10.0)
        assert link.utilization() == 0.0

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            BandwidthChannel(Simulator(), bandwidth=0.0)

    def test_negative_bytes_rejected(self):
        link = BandwidthChannel(Simulator(), bandwidth=10.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)
