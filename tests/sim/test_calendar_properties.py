"""Property suite: the calendar queue against the heapq reference order.

The bucket calendar replaced the single-heap event calendar; its contract
is that the pop order is **exactly** the ``(when, sequence)`` total order
the heap produced — same-time FIFO included — under every workload: random
delay streams, zero delays, duplicate timestamps, and streams dense or
sparse enough to trigger the adaptive bucket-width resize in either
direction.  Each property replays the schedule through an inline heapq
model and compares the full firing order.
"""

import heapq

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BatchTimeout, SimulationError, Simulator

# Delay streams: mixes of zero, tiny, unit-scale and bucket-spanning delays,
# with duplicates made likely by drawing from a coarse lattice.
_delay = st.one_of(
    st.just(0.0),
    st.integers(min_value=0, max_value=40).map(lambda k: k * 0.25),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
)


def _fire_order(sim: Simulator, delays):
    """Schedule all *delays* up front; return indices in firing order."""
    order = []
    for i, delay in enumerate(delays):
        sim.timeout(delay).add_callback(lambda e, i=i: order.append(i))
    sim.run()
    return order


def _heapq_order(delays):
    """The reference order: a plain (when, sequence) heap."""
    heap = [(delay, seq) for seq, delay in enumerate(delays)]
    heapq.heapify(heap)
    return [seq for _, seq in [heapq.heappop(heap) for _ in range(len(heap))]]


class TestPopOrderMatchesHeapq:
    @given(st.lists(_delay, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_static_schedule(self, delays):
        assert _fire_order(Simulator(), delays) == _heapq_order(delays)

    @given(st.lists(_delay, max_size=200), st.floats(min_value=1e-3, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_any_initial_bucket_width(self, delays, width):
        assert _fire_order(Simulator(bucket_width=width), delays) == _heapq_order(delays)

    @given(st.lists(st.lists(_delay, max_size=12), max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_dynamic_schedule(self, waves):
        """Events scheduled *during* the run (follow-on waves) stay ordered.

        Each fired event schedules its wave of follow-ons relative to its
        own timestamp — the enqueue-while-draining path where the drained
        front must hand ordering back to the bucket heap correctly.
        """
        sim = Simulator()
        order = []
        labels = []

        def schedule(delays, base_label):
            for j, delay in enumerate(delays):
                label = (*base_label, j)
                labels.append(label)
                follow_on = waves[len(label)] if len(label) < len(waves) else []
                sim.timeout(delay).add_callback(
                    lambda e, label=label, fo=follow_on: (
                        order.append(label),
                        schedule(fo, label),
                    )
                )

        if waves:
            schedule(waves[0], ())
        sim.run()
        assert sorted(order) == sorted(labels)
        # The reference: replay the same recursive schedule on a heap model.
        ref_order = []
        heap = []
        seq = 0

        def ref_schedule(now, delays, base_label):
            nonlocal seq
            for j, delay in enumerate(delays):
                heapq.heappush(heap, (now + delay, seq, (*base_label, j)))
                seq += 1

        if waves:
            ref_schedule(0.0, waves[0], ())
        while heap:
            when, _, label = heapq.heappop(heap)
            ref_order.append(label)
            follow_on = waves[len(label)] if len(label) < len(waves) else []
            ref_schedule(when, follow_on, label)
        assert order == ref_order


class TestResizeWorkloads:
    def test_shrink_resize_preserves_order(self):
        """An overfull, spread-out bucket narrows the width mid-run."""
        sim = Simulator()  # width 1.0: all of [1, 2) lands in one bucket
        delays = [0.5] + [1.0 + (i % 600) / 601.0 for i in range(700)]
        assert _fire_order(sim, delays) == _heapq_order(delays)
        assert sim.calendar_resizes >= 1
        assert sim.bucket_width < 1.0

    def test_grow_resize_preserves_order(self):
        """A long run of near-empty buckets widens the width mid-run."""
        sim = Simulator()
        delays = [i + 0.5 for i in range(400)]
        assert _fire_order(sim, delays) == _heapq_order(delays)
        assert sim.calendar_resizes >= 1
        assert sim.bucket_width > 1.0

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_random_stream_after_forced_resize(self, data):
        sim = Simulator()
        head = [0.25] + [1.0 + (i % 600) / 601.0 for i in range(700)]
        tail = data.draw(st.lists(_delay, max_size=100))
        delays = head + tail
        assert _fire_order(sim, delays) == _heapq_order(delays)


class TestQueueDepthAccounting:
    def test_depth_counts_all_buckets(self):
        """Satellite regression: depth = total buffered events across the
        calendar (front + every pending bucket), not one heap's length."""
        sim = Simulator()
        # 3 in the front bucket (width 1.0 -> bucket 0), 5 + 2 in future ones.
        for _ in range(3):
            sim.timeout(0.25)
        for _ in range(5):
            sim.timeout(3.5)
        for _ in range(2):
            sim.timeout(7.25)
        stats = sim.stats()
        assert stats.queue_depth == 10
        assert stats.max_queue_depth == 10
        sim.run()
        assert sim.stats().queue_depth == 0
        assert sim.stats().max_queue_depth == 10
        assert sim.events_processed == 10

    def test_max_depth_tracks_peak_not_final(self):
        sim = Simulator()
        for _ in range(4):
            sim.timeout(1.0)
        sim.run()
        for _ in range(2):
            sim.timeout(1.0)
        sim.run()
        assert sim.stats().max_queue_depth == 4

    def test_batch_entries_weighted(self):
        """One BatchTimeout counts as its batch size everywhere."""
        sim = Simulator()
        sim.schedule_batch(np.array([1.0] * 500 + [2.0] * 300))
        stats = sim.stats()
        assert stats.queue_depth == 800
        assert stats.events_scheduled == 800
        sim.run()
        stats = sim.stats()
        assert stats.events_processed == 800
        assert stats.queue_depth == 0
        assert stats.max_queue_depth == 800


class TestBatchDispatch:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=20).map(lambda k: k * 0.5),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_completion_times_match_scalar(self, delays):
        """schedule_batch fires at the same instants as per-event timeouts."""
        scalar = Simulator()
        fired_scalar = []
        for d in delays:
            scalar.timeout(d).add_callback(lambda e, d=d: fired_scalar.append((scalar.now, d)))
        scalar.run()

        batched = Simulator()
        fired_batched = []

        def on_complete(event):
            fired_batched.extend((batched.now, event.value) for _ in range(event.count))

        batched.schedule_batch(np.asarray(delays), on_complete=on_complete)
        batched.run()
        assert sorted(fired_batched) == sorted(fired_scalar)
        assert batched.events_processed == scalar.events_processed

    def test_values_keep_input_order_within_batch(self):
        sim = Simulator()
        delays = [2.0, 1.0, 2.0, 1.0, 2.0]
        values = [10, 11, 12, 13, 14]
        batches = sim.schedule_batch(delays, values=values)
        sim.run()
        assert [b.delay for b in batches] == [1.0, 2.0]
        assert batches[0].value.tolist() == [11, 13]
        assert batches[1].value.tolist() == [10, 12, 14]

    def test_step_batch_drains_one_epoch(self):
        sim = Simulator()
        sim.schedule_batch([1.0] * 10)
        sim.timeout(1.0)
        sim.timeout(2.0)
        assert sim.step_batch() == 11
        assert sim.now == 1.0
        assert sim.stats().queue_depth == 1

    def test_step_batch_includes_same_time_follow_ons(self):
        sim = Simulator()
        sim.timeout(1.0).add_callback(lambda e: sim.timeout(0.0))
        sim.timeout(2.0)
        assert sim.step_batch() == 2  # the 1.0 event and its 0-delay follow-on
        assert sim.now == 1.0

    def test_step_batch_on_empty_raises(self):
        import pytest

        with pytest.raises(SimulationError):
            Simulator().step_batch()

    def test_batch_rejects_bad_input(self):
        import pytest

        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_batch([-1.0])
        with pytest.raises(ValueError):
            sim.schedule_batch([float("inf")])
        with pytest.raises(ValueError):
            sim.schedule_batch([1.0, 2.0], values=[1])
        with pytest.raises(ValueError):
            BatchTimeout(sim, 1.0, np.array([1.0]), count=0)
        assert sim.schedule_batch([]) == []
