"""Property-based tests for the DES kernel (hypothesis)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BandwidthChannel, Resource, Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20)


class TestClockProperties:
    @given(delays)
    def test_clock_monotone_nondecreasing(self, ds):
        sim = Simulator()
        seen = []
        for d in ds:
            sim.timeout(d).add_callback(lambda e: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(ds)

    @given(delays)
    def test_final_time_is_max_delay(self, ds):
        sim = Simulator()
        for d in ds:
            sim.timeout(d)
        sim.run()
        assert sim.now == max(ds)

    @given(delays)
    def test_events_fire_at_their_delay(self, ds):
        sim = Simulator()
        fired = {}
        for i, d in enumerate(ds):
            sim.timeout(d).add_callback(lambda e, i=i, d=d: fired.setdefault(i, sim.now))
        sim.run()
        for i, d in enumerate(ds):
            assert fired[i] == d


class TestProcessChainProperties:
    @given(delays)
    def test_sequential_process_time_is_sum(self, ds):
        sim = Simulator()

        def chain():
            for d in ds:
                yield sim.timeout(d)
            return sim.now

        total = sim.run(until=sim.process(chain()))
        # Floating-point summation in the calendar accumulates the same way.
        expected = 0.0
        for d in ds:
            expected += d
        assert total == expected

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10))
    def test_parallel_processes_time_is_max(self, ds):
        sim = Simulator()
        procs = []

        def worker(d):
            yield sim.timeout(d)

        for d in ds:
            procs.append(sim.process(worker(d)))
        sim.run(until=sim.all_of(procs))
        assert sim.now == max(ds)


class TestResourceProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=12),
    )
    @settings(max_examples=40)
    def test_never_exceeds_capacity_and_work_conserving(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        active = [0]
        max_active = [0]

        def worker(hold):
            req = res.request()
            yield req
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            yield sim.timeout(hold)
            active[0] -= 1
            res.release(req)

        for h in holds:
            sim.process(worker(h))
        sim.run()
        assert max_active[0] <= capacity
        # Work conservation: if there were >= capacity jobs, the cap was hit.
        assert max_active[0] == min(capacity, len(holds))
        # Makespan is at least the bound given by perfect packing.
        assert sim.now >= max(holds) - 1e-9
        assert sim.now >= sum(holds) / capacity - 1e-9


class TestChannelProperties:
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=15))
    def test_fifo_completion_equals_prefix_sums(self, sizes):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=1e3)
        completions = []

        def mover(n):
            yield link.transfer(n)
            completions.append(sim.now)

        for n in sizes:
            sim.process(mover(n))
        sim.run()
        # All submitted at t=0 in order; completion k = prefix-sum of durations.
        expected = list(heapq.nsmallest(len(sizes), _prefix_sums(sizes, 1e3)))
        assert completions == sorted(completions)
        for got, want in zip(completions, expected):
            assert abs(got - want) <= 1e-6 * max(1.0, want)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=10))
    def test_bytes_accounted_exactly(self, sizes):
        sim = Simulator()
        link = BandwidthChannel(sim, bandwidth=123.0)
        for n in sizes:
            link.transfer(n)
        sim.run()
        assert link.bytes_transferred == sum(sizes)
        assert link.transfer_count == len(sizes)


def _prefix_sums(sizes, bandwidth):
    total = 0.0
    out = []
    for n in sizes:
        total += n / bandwidth
        out.append(total)
    return out
