"""Unit tests for the DES kernel (repro.sim.engine)."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_run_until_time(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_time_processes_due_events(self):
        sim = Simulator()
        fired = []
        t = sim.timeout(3.0)
        t.add_callback(lambda e: fired.append(sim.now))
        sim.run(until=3.0)
        assert fired == [3.0]

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Simulator().timeout(-1.0)

    def test_same_time_fifo_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            t = sim.timeout(1.0)
            t.add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_step_on_empty_calendar_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(7.0)
        assert sim.peek() == 7.0


class TestEvents:
    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("payload")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_raises_at_processing(self):
        sim = Simulator()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        sim.run()  # no raise

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_callback_after_processing_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        sim.run()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)


class TestProcesses:
    def test_sequential_timeouts(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)
            return "done"

        p = sim.process(proc())
        result = sim.run(until=p)
        assert log == [1.0, 3.0]
        assert result == "done"

    def test_timeout_value_passed_back(self):
        sim = Simulator()

        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert sim.run(until=sim.process(proc())) == "hello"

    def test_process_waits_on_process(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(5.0)
            return 42

        def outer():
            value = yield sim.process(inner())
            return value * 2

        assert sim.run(until=sim.process(outer())) == 84
        assert sim.now == 5.0

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append((name, sim.now))

        sim.process(worker("fast", 1.0))
        sim.process(worker("slow", 3.0))
        sim.run()
        assert log == [("fast", 1.0), ("slow", 3.0)]

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def failing():
            yield sim.timeout(1.0)
            raise ValueError("inner fault")

        def waiter():
            try:
                yield sim.process(failing())
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run(until=sim.process(waiter())) == "caught inner fault"

    def test_unhandled_process_exception_surfaces(self):
        sim = Simulator()

        def failing():
            yield sim.timeout(1.0)
            raise ValueError("unhandled")

        sim.process(failing())
        with pytest.raises(ValueError, match="unhandled"):
            sim.run()

    def test_yield_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield 123

        sim.process(bad())
        with pytest.raises(SimulationError, match="must yield Event"):
            sim.run()

    def test_yield_already_processed_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("old")

        def late():
            yield sim.timeout(2.0)
            got = yield ev  # processed long ago
            return got

        assert sim.run(until=sim.process(late())) == "old"
        assert sim.now == 2.0

    def test_cross_simulator_yield_rejected(self):
        sim1, sim2 = Simulator(), Simulator()

        def confused():
            yield sim2.timeout(1.0)

        sim1.process(confused())
        with pytest.raises(SimulationError, match="different Simulator"):
            sim1.run()

    def test_process_requires_generator(self):
        with pytest.raises(TypeError):
            Simulator().process(lambda: None)  # type: ignore[arg-type]

    def test_run_until_deadlocked_event_raises(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=never)

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            yield sim.timeout(1.0)
            sim.run()

        sim.process(nested())
        with pytest.raises(SimulationError, match="not reentrant"):
            sim.run()


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        cond = AllOf(sim, [sim.timeout(1.0, value="a"), sim.timeout(4.0, value="b")])

        def waiter():
            values = yield cond
            return values

        assert sim.run(until=sim.process(waiter())) == ["a", "b"]
        assert sim.now == 4.0

    def test_any_of_takes_fastest(self):
        sim = Simulator()
        cond = AnyOf(sim, [sim.timeout(1.0, value="fast"), sim.timeout(4.0, value="slow")])

        def waiter():
            value = yield cond
            return value

        assert sim.run(until=sim.process(waiter())) == "fast"
        assert sim.now == 1.0

    def test_all_of_empty_succeeds_immediately(self):
        sim = Simulator()
        cond = sim.all_of([])

        def waiter():
            return (yield cond)

        assert sim.run(until=sim.process(waiter())) == []

    def test_all_of_fails_fast(self):
        sim = Simulator()
        bad = sim.event()

        def failer():
            yield sim.timeout(1.0)
            bad.fail(RuntimeError("first failure"))

        def waiter():
            try:
                yield sim.all_of([bad, sim.timeout(10.0)])
            except RuntimeError as exc:
                return (str(exc), sim.now)

        sim.process(failer())
        assert sim.run(until=sim.process(waiter())) == ("first failure", 1.0)

    def test_all_of_with_pretriggered_events(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("x")
        sim.run()  # process it

        def waiter():
            return (yield sim.all_of([done, sim.timeout(1.0, value="y")]))

        assert sim.run(until=sim.process(waiter())) == ["x", "y"]

    def test_cross_simulator_condition_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim1, [sim2.timeout(1.0)])
