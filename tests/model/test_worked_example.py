"""Reproduce the paper's Section V.A worked example, number for number.

"Take the double-precision matrix-matrix multiplication with size N = 10000
as an example, the size of each matrix is 800 MB. ... the time required for
data transfer is 800*3/500 + 800*3/5000 = 5.28 s without any optimization.
The double-precision floating-point operation count is about 2*N^3 = 2000 G.
With the peak performance of an AMD RV770 GPU chip capable of 240 GFLOPS,
the computing time is 2000/240 = 8.33 s."
"""

import pytest

from repro.machine.pcie import PCIeLink
from repro.machine.presets import PCIE_2, RV770
from repro.model import calibration as cal
from repro.sim import Simulator
from repro.util.units import MB, dgemm_flops, matrix_bytes


class TestWorkedExample:
    def test_matrix_is_800_mb(self):
        assert matrix_bytes(cal.WORKED_EXAMPLE_N, cal.WORKED_EXAMPLE_N) == pytest.approx(
            cal.WORKED_EXAMPLE_MATRIX_MB * MB
        )

    def test_transfer_time_5_28s(self):
        link = PCIeLink(Simulator(), PCIE_2)
        three_matrices = 3 * cal.WORKED_EXAMPLE_MATRIX_MB * MB
        assert link.duration(three_matrices, pinned=False) == pytest.approx(
            cal.WORKED_EXAMPLE_TRANSFER_S, rel=1e-3
        )

    def test_flop_count_2000_gflop(self):
        n = cal.WORKED_EXAMPLE_N
        assert dgemm_flops(n, n, n) == pytest.approx(2000e9)

    def test_compute_time_8_33s_at_peak(self):
        n = cal.WORKED_EXAMPLE_N
        t = dgemm_flops(n, n, n) / RV770.peak_flops()
        assert t == pytest.approx(cal.WORKED_EXAMPLE_COMPUTE_S, rel=1e-3)

    def test_communication_is_significant(self):
        """The example's point: transfers are ~63% of compute time."""
        ratio = cal.WORKED_EXAMPLE_TRANSFER_S / cal.WORKED_EXAMPLE_COMPUTE_S
        assert ratio > 0.5


class TestCalibrationConsistency:
    def test_pinned_limit_matches_spec(self):
        assert PCIE_2.pinned_chunk_bytes == pytest.approx(cal.PINNED_LIMIT_MB * 1e6)

    def test_texture_limit(self):
        assert RV770.max_texture_dim == cal.TEXTURE_LIMIT

    def test_rv770_peak(self):
        assert RV770.peak_flops() == pytest.approx(cal.RV770_DP_PEAK)

    def test_derived_cpu_only_linpack(self):
        assert cal.derived_cpu_only_linpack() == pytest.approx(35.8e9, rel=1e-2)

    def test_speedup_identities(self):
        assert cal.SINGLE_ELEMENT_LINPACK / cal.ACMLG_LINPACK == pytest.approx(3.32, abs=0.02)
        assert cal.SINGLE_ELEMENT_LINPACK / cal.ELEMENT_PEAK == pytest.approx(
            cal.SINGLE_ELEMENT_PEAK_FRACTION, abs=0.002
        )

    def test_full_system_grid_size(self):
        p, q = cal.FULL_SYSTEM_GRID
        assert p * q == cal.TOTAL_ELEMENTS

    def test_training_energy_identities(self):
        assert cal.QILIN_TRAINING_HOURS_PER_CABINET * cal.CABINET_POWER_KW == pytest.approx(
            cal.QILIN_TRAINING_KWH_PER_CABINET
        )
        assert cal.QILIN_TRAINING_KWH_PER_CABINET * cal.CABINETS == pytest.approx(
            cal.QILIN_TRAINING_KWH_FULL_SYSTEM
        )

    def test_endgame_drop_identity(self):
        assert cal.PERF_BEFORE_DROP - cal.ENDGAME_DROP == pytest.approx(
            cal.LINPACK_FULL_SYSTEM, rel=5e-3
        )
