"""Property-based tests for the closed-form DGEMM model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.dgemm_model import (
    DgemmShape,
    ElementRates,
    balanced_gsplit,
    hybrid_dgemm_time,
    transfer_bytes,
)


def rates(gpu_peak=240e9, cpu_rate=26.9e9, host_bw=4e9):
    return ElementRates(
        gpu_peak=gpu_peak, eff_max=0.84, w_half=80e9, kernel_overhead=1e-3,
        cpu_rate=cpu_rate, host_bw=host_bw, gpu_bw=5e9, pcie_latency=20e-6,
    )


dims = st.integers(256, 30000)
splits = st.floats(0.0, 1.0)


class TestTimingProperties:
    @given(dims, dims, st.integers(64, 8192), splits)
    @settings(max_examples=50, deadline=None)
    def test_makespan_positive_and_max_of_paths(self, m, n, k, gsplit):
        t = hybrid_dgemm_time(DgemmShape(m, n, k), gsplit, rates(), pipelined=True)
        assert t.makespan >= 0
        assert t.makespan == pytest.approx(max(np.asarray(t.gpu.t_total), np.asarray(t.t_cpu)))

    @given(dims, st.integers(64, 4096), splits)
    @settings(max_examples=40, deadline=None)
    def test_pipeline_never_slower(self, n, k, gsplit):
        shape = DgemmShape(n, n, k)
        sync = hybrid_dgemm_time(shape, gsplit, rates(), pipelined=False, reuse=True)
        pipe = hybrid_dgemm_time(shape, gsplit, rates(), pipelined=True)
        assert pipe.makespan <= sync.makespan * (1 + 1e-9)

    @given(dims, st.integers(64, 4096))
    @settings(max_examples=40, deadline=None)
    def test_faster_gpu_never_hurts(self, n, k):
        shape = DgemmShape(n, n, k)
        slow = hybrid_dgemm_time(shape, 0.9, rates(gpu_peak=120e9), pipelined=True)
        fast = hybrid_dgemm_time(shape, 0.9, rates(gpu_peak=240e9), pipelined=True)
        assert fast.makespan <= slow.makespan * (1 + 1e-9)

    @given(dims, st.integers(64, 4096))
    @settings(max_examples=40, deadline=None)
    def test_more_bandwidth_never_hurts(self, n, k):
        shape = DgemmShape(n, n, k)
        slow = hybrid_dgemm_time(shape, 0.9, rates(host_bw=1e9), pipelined=False)
        fast = hybrid_dgemm_time(shape, 0.9, rates(host_bw=8e9), pipelined=False)
        assert fast.makespan <= slow.makespan * (1 + 1e-9)


class TestBalancedSplitProperties:
    @given(dims, st.integers(256, 4096))
    @settings(max_examples=30, deadline=None)
    def test_split_in_unit_interval(self, n, k):
        gs = balanced_gsplit(DgemmShape(n, n, k), rates(), pipelined=True)
        assert 0.0 <= gs <= 1.0

    @given(st.integers(8192, 30000), st.integers(1024, 4096))
    @settings(max_examples=25, deadline=None)
    def test_balanced_beats_extremes_for_large_workloads(self, n, k):
        """At large workloads (rates ~split-independent) the paper's fixed
        point beats both pure assignments."""
        shape = DgemmShape(n, n, k)
        r = rates()
        gs = balanced_gsplit(shape, r, pipelined=True)
        t_bal = hybrid_dgemm_time(shape, float(gs), r, pipelined=True).makespan
        t_gpu = hybrid_dgemm_time(shape, 1.0, r, pipelined=True).makespan
        t_cpu = hybrid_dgemm_time(shape, 0.0, r, pipelined=True).makespan
        assert t_bal <= min(t_gpu, t_cpu) * 1.02

    def test_fixed_point_is_suboptimal_for_tiny_workloads(self):
        """A documented limitation of the paper's rule (and the motivation
        for the endgame CPU fallback): `GSplit <- P_G/(P_G+P_C)` equalises
        completion times, which is only optimal when device rates do not
        depend on the split.  At small-but-not-tiny workloads the GPU's rate
        collapses with its shrinking share (the efficiency curve implies a
        ~w_half/peak startup cost per call), and pure-CPU beats the fixed
        point — at truly tiny workloads the iteration itself lands on ~0."""
        shape = DgemmShape(1500, 1500, 2048)
        r = rates()
        gs = balanced_gsplit(shape, r, pipelined=True)
        t_bal = hybrid_dgemm_time(shape, float(gs), r, pipelined=True).makespan
        t_cpu = hybrid_dgemm_time(shape, 0.0, r, pipelined=True).makespan
        assert t_cpu < t_bal


class TestTransferByteProperties:
    @given(dims, dims, st.integers(64, 8192), splits, st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_reuse_never_increases_traffic(self, m, n, k, gsplit, beta):
        shape = DgemmShape(m, n, k, beta_nonzero=beta)
        smart, out_s, tasks_s = transfer_bytes(shape, gsplit, reuse=True)
        naive, out_n, tasks_n = transfer_bytes(shape, gsplit, reuse=False)
        assert smart <= naive
        assert out_s == out_n
        assert tasks_s == tasks_n

    @given(dims, dims, st.integers(64, 8192), splits)
    @settings(max_examples=50, deadline=None)
    def test_output_bytes_exact(self, m, n, k, gsplit):
        shape = DgemmShape(m, n, k, beta_nonzero=False)
        _, out_bytes, n_tasks = transfer_bytes(shape, gsplit, reuse=True)
        m1 = int(round(m * gsplit))
        if n_tasks > 0:
            assert out_bytes == m1 * n * 8
        else:
            assert out_bytes == 0.0
