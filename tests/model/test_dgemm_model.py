"""Unit tests for the closed-form hybrid DGEMM model."""

import numpy as np
import pytest

from repro.machine.node import ComputeElement
from repro.machine.presets import tianhe1_element
from repro.machine.variability import NO_VARIABILITY
from repro.model.dgemm_model import (
    DgemmShape,
    ElementRates,
    balanced_gsplit,
    hybrid_dgemm_time,
    transfer_bytes,
)
from repro.sim import Simulator


def nominal_rates(**kw):
    defaults = dict(
        gpu_peak=240e9,
        eff_max=0.84,
        w_half=80e9,
        kernel_overhead=1e-3,
        cpu_rate=3 * 10.12e9 * 0.885,
        host_bw=4e9,
        gpu_bw=5e9,
        pcie_latency=20e-6,
    )
    defaults.update(kw)
    return ElementRates(**defaults)


class TestDgemmShape:
    def test_flops(self):
        assert DgemmShape(100, 200, 50).flops == 2e6

    def test_task_grid(self):
        shape = DgemmShape(16384, 16384, 1216)
        assert shape.task_grid(1.0, 8192) == (2, 2)
        assert shape.task_grid(0.5, 8192) == (1, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DgemmShape(-1, 2, 3)


class TestTransferBytes:
    def test_reuse_counts_each_operand_once(self):
        shape = DgemmShape(10000, 10000, 1216, beta_nonzero=False)
        in_bytes, out_bytes, n_tasks = transfer_bytes(shape, 1.0, reuse=True)
        assert in_bytes == (10000 * 1216 + 1216 * 10000) * 8
        assert out_bytes == 10000 * 10000 * 8
        assert n_tasks == 4

    def test_no_reuse_multiplies_by_grid(self):
        shape = DgemmShape(10000, 10000, 1216, beta_nonzero=False)
        smart, _, _ = transfer_bytes(shape, 1.0, reuse=True)
        naive, _, _ = transfer_bytes(shape, 1.0, reuse=False)
        assert naive == 2 * smart  # 2x2 grid: A sent twice, B sent twice

    def test_beta_adds_c_input(self):
        shape = DgemmShape(8000, 8000, 1216, beta_nonzero=True)
        with_c, _, _ = transfer_bytes(shape, 1.0, reuse=True)
        without_c, _, _ = transfer_bytes(
            DgemmShape(8000, 8000, 1216, beta_nonzero=False), 1.0, reuse=True
        )
        assert with_c - without_c == 8000 * 8000 * 8

    def test_zero_gpu_share(self):
        shape = DgemmShape(1000, 1000, 1000)
        assert transfer_bytes(shape, 0.0, reuse=True) == (0.0, 0.0, 0)


class TestHybridDgemmTime:
    def test_makespan_is_max_of_paths(self):
        shape = DgemmShape(10000, 10000, 10000)
        t = hybrid_dgemm_time(shape, 0.889, nominal_rates(), pipelined=False)
        assert t.makespan == max(t.gpu.t_total, t.t_cpu)

    def test_gpu_only(self):
        shape = DgemmShape(10000, 10000, 10000)
        t = hybrid_dgemm_time(shape, 1.0, nominal_rates(), pipelined=False)
        assert t.t_cpu == 0.0
        assert t.makespan == t.gpu.t_total

    def test_cpu_only(self):
        shape = DgemmShape(4000, 4000, 4000)
        t = hybrid_dgemm_time(shape, 0.0, nominal_rates(), pipelined=False)
        assert t.gpu.t_total == 0.0
        assert t.makespan == pytest.approx(shape.flops / nominal_rates().cpu_rate)

    def test_pipeline_never_slower(self):
        for n in (4096, 10240, 16384):
            shape = DgemmShape(n, n, n, beta_nonzero=False)
            sync = hybrid_dgemm_time(shape, 0.9, nominal_rates(), pipelined=False, reuse=True)
            pipe = hybrid_dgemm_time(shape, 0.9, nominal_rates(), pipelined=True)
            assert pipe.makespan <= sync.makespan * (1 + 1e-9)

    def test_single_task_pipeline_degenerates(self):
        shape = DgemmShape(8192, 8192, 1216, beta_nonzero=False)
        sync = hybrid_dgemm_time(shape, 1.0, nominal_rates(), pipelined=False, reuse=True)
        pipe = hybrid_dgemm_time(shape, 1.0, nominal_rates(), pipelined=True)
        assert pipe.makespan == pytest.approx(sync.makespan)

    def test_cpu_imbalance_extends_cpu_path(self):
        shape = DgemmShape(8000, 8000, 8000)
        balanced = hybrid_dgemm_time(shape, 0.5, nominal_rates(), pipelined=False)
        skewed = hybrid_dgemm_time(
            shape, 0.5, nominal_rates(cpu_imbalance=1.2), pipelined=False
        )
        assert skewed.t_cpu == pytest.approx(balanced.t_cpu * 1.2)

    def test_effective_rate(self):
        shape = DgemmShape(10000, 10000, 10000)
        t = hybrid_dgemm_time(shape, 0.889, nominal_rates(), pipelined=True)
        assert t.effective_rate(shape.flops) == pytest.approx(shape.flops / t.makespan)

    def test_vectorized_over_elements(self):
        shape = DgemmShape(12288, 12288, 1216)
        rates = nominal_rates(
            gpu_peak=np.array([240e9, 200e9]),
            eff_max=np.array([0.84, 0.84]),
            w_half=np.array([80e9, 80e9]),
            kernel_overhead=np.array([1e-3, 1e-3]),
            cpu_rate=np.array([26.9e9, 26.9e9]),
        )
        t = hybrid_dgemm_time(shape, 0.889, rates, pipelined=True)
        assert np.shape(t.makespan) == (2,)
        assert t.makespan[1] > t.makespan[0]  # slower GPU, slower element


class TestBalancedGsplit:
    def test_fixed_point_equalises_paths(self):
        shape = DgemmShape(12288, 12288, 1216)
        rates = nominal_rates()
        gs = balanced_gsplit(shape, rates, pipelined=True)
        t = hybrid_dgemm_time(shape, float(gs), rates, pipelined=True)
        assert t.gpu.t_total == pytest.approx(t.t_cpu, rel=0.05)

    def test_faster_gpu_gets_more(self):
        shape = DgemmShape(12288, 12288, 1216)
        slow = balanced_gsplit(shape, nominal_rates(gpu_peak=120e9), pipelined=True)
        fast = balanced_gsplit(shape, nominal_rates(gpu_peak=240e9), pipelined=True)
        assert fast > slow

    def test_small_workload_shifts_to_cpu(self):
        rates = nominal_rates()
        tiny = balanced_gsplit(DgemmShape(1024, 1024, 1024), rates, pipelined=False)
        huge = balanced_gsplit(DgemmShape(16384, 16384, 1216), rates, pipelined=False)
        assert tiny < huge

    def test_vectorized(self):
        shape = DgemmShape(10240, 10240, 1216)
        rates = nominal_rates(
            gpu_peak=np.array([240e9, 120e9]),
            eff_max=np.array([0.84, 0.84]),
            w_half=np.array([80e9, 80e9]),
            kernel_overhead=np.array([1e-3, 1e-3]),
            cpu_rate=np.array([26.9e9, 26.9e9]),
        )
        gs = balanced_gsplit(shape, rates, pipelined=True)
        assert gs.shape == (2,)
        assert gs[0] > gs[1]


class TestFromElement:
    def test_rates_match_device_models(self):
        sim = Simulator()
        element = ComputeElement(sim, tianhe1_element(), variability=NO_VARIABILITY)
        rates = ElementRates.from_element(element)
        w = 5e11
        assert rates.gpu_rate(w) == pytest.approx(element.gpu.kernel_rate(w))
        assert rates.cpu_rate == pytest.approx(element.cpu_compute_rate())
