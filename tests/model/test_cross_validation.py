"""Cross-validation: closed-form model vs exact DES execution.

The analytic HPL stepper trusts the closed-form hybrid-DGEMM makespans; these
tests pin them against the event-driven executor on a deterministic element.
Tolerances are loose where the closed form deliberately simplifies (task
residency, chunked transfer interleaving) and tight where it should be exact
(kernel-dominated regimes).
"""

import pytest

from repro.core.hybrid_dgemm import HybridDgemm
from repro.core.static_map import StaticMapper
from repro.model.dgemm_model import DgemmShape, ElementRates, hybrid_dgemm_time
from tests.conftest import build_element


def des_time(n, k, gsplit, pipelined, beta_nonzero=True):
    element = build_element()
    hd = HybridDgemm(element, StaticMapper(gsplit, 3), pipelined=pipelined, jitter=False)
    result = hd.run_to_completion(n, n, k, beta_nonzero=beta_nonzero)
    return result.t_total, element


def closed_form_time(n, k, gsplit, pipelined, element, beta_nonzero=True):
    rates = ElementRates.from_element(element)
    shape = DgemmShape(n, n, k, beta_nonzero=beta_nonzero)
    return hybrid_dgemm_time(shape, gsplit, rates, pipelined=pipelined, reuse=True).makespan


CASES = [
    # (n, k, gsplit, pipelined, rel_tol)
    (4096, 4096, 0.889, False, 0.08),
    (4096, 4096, 0.889, True, 0.08),
    (8192, 1216, 0.889, False, 0.08),
    (10240, 1216, 1.0, False, 0.10),
    (10240, 1216, 1.0, True, 0.10),
    (16384, 1216, 0.9, True, 0.12),
    (12288, 12288, 0.889, True, 0.15),  # K-split + memory-constrained blocks
    (2048, 2048, 0.5, False, 0.10),
]


class TestClosedFormMatchesDES:
    @pytest.mark.parametrize("n,k,gsplit,pipelined,tol", CASES)
    def test_makespan_within_tolerance(self, n, k, gsplit, pipelined, tol):
        des, element = des_time(n, k, gsplit, pipelined)
        cf = closed_form_time(n, k, gsplit, pipelined, element)
        assert cf == pytest.approx(des, rel=tol)

    def test_cpu_only_near_exact(self):
        """CPU-only differs only by integer row rounding across 3 cores."""
        des, element = des_time(4096, 4096, 0.0, False)
        cf = closed_form_time(4096, 4096, 0.0, False, element)
        assert cf == pytest.approx(des, rel=1e-3)

    def test_relative_orderings_agree(self):
        """Whatever the absolute error, sync vs pipe ordering must agree."""
        for n, k in [(10240, 1216), (16384, 1216)]:
            des_sync, el = des_time(n, k, 1.0, False, beta_nonzero=False)
            des_pipe, _ = des_time(n, k, 1.0, True, beta_nonzero=False)
            cf_sync = closed_form_time(n, k, 1.0, False, el, beta_nonzero=False)
            cf_pipe = closed_form_time(n, k, 1.0, True, el, beta_nonzero=False)
            assert (des_pipe < des_sync) == (cf_pipe < cf_sync)

    def test_kernel_dominated_regime_tight(self):
        """With huge K the kernel dwarfs transfers; both must agree closely."""
        des, element = des_time(8192, 8192, 1.0, True, beta_nonzero=False)
        cf = closed_form_time(8192, 8192, 1.0, True, element, beta_nonzero=False)
        assert cf == pytest.approx(des, rel=0.03)
