"""MPI conformance kit: every collective against a pure-python reference.

Each collective runs on the simulated communicator and is compared against a
*reference executor* — an independent, simulation-free implementation of the
MPI contract computed directly from the per-rank inputs.  Roots sweep every
rank, the panel-broadcast family sweeps every algorithm (and every accepted
alias), and split-derived row/column sub-communicators are checked against
the same references group by group.  Non-commutative reduction operators pin
the absolute-rank combination order MPI mandates.

Grid shapes cover the degenerate 1x1, flat 1x4, square 2x2, tall 4x2, and
non-power-of-two 3x5 cases; 4x8 and 8x8 run behind the ``slow`` marker.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.hpl.grid import ProcessGrid
from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND
from repro.mpi import BCAST_ALGORITHMS, SimMPI, run_ranks
from repro.mpi.bcast import ALGORITHM_ALIASES
from repro.sim import Simulator
from tests.strategies import message_payloads

#: The grid shapes the kit sweeps (see module docstring).
GRID_SHAPES = [(1, 1), (1, 4), (2, 2), (4, 2), (3, 5)]
#: World sizes those shapes induce (deduplicated, sorted).
SIZES = sorted({p * q for p, q in GRID_SHAPES})
#: Every accepted broadcast spelling: canonical names plus aliases.
ALL_SPELLINGS = list(BCAST_ALGORITHMS) + sorted(ALGORITHM_ALIASES)


def collective(size, rank_fn, with_network=True):
    """Run ``rank_fn(comm)`` on a fresh *size*-rank world; per-rank results."""
    sim = Simulator()
    network = Interconnect(sim, QDR_INFINIBAND, size) if with_network else None
    world = SimMPI(sim, size, network)
    return run_ranks(sim, world, rank_fn)


def same(a, b):
    """Structural payload equality (arrays by dtype+shape+values)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (tuple, list)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(same(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(same(v, b[k]) for k, v in a.items())
        )
    return type(a) is type(b) and a == b


# -- the reference executor ---------------------------------------------------
# Pure functions from per-rank inputs to per-rank outputs: the MPI contract
# with no network, no events, no rank programs.


def ref_bcast(inputs, root):
    return [inputs[root]] * len(inputs)


def ref_gather(inputs, root):
    return [list(inputs) if r == root else None for r in range(len(inputs))]


def ref_scatterv(parts, root):
    return list(parts)


def ref_allgather(inputs):
    return [list(inputs)] * len(inputs)


def ref_reduce(inputs, op, root):
    total = inputs[0]
    for item in inputs[1:]:
        total = op(total, item)
    return [total if r == root else None for r in range(len(inputs))]


def ref_allreduce(inputs, op):
    return [ref_reduce(inputs, op, 0)[0]] * len(inputs)


def bcast_payload(root):
    """A root-distinctive payload exercising every split/join path of ``long``:
    an array (split along axis 0), a dict (travels whole + fillers), bytes."""
    return (np.arange(3 + root, dtype=np.float64) * 2.0, {"root": root}, b"panel")


class TestBcastConformance:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("algorithm", ALL_SPELLINGS)
    def test_every_algorithm_every_root(self, size, algorithm):
        for root in range(size):
            inputs = [bcast_payload(root) if r == root else None for r in range(size)]

            def rank_fn(comm):
                return (
                    yield from comm.bcast(
                        inputs[comm.rank], root=root, algorithm=algorithm
                    )
                )

            results = collective(size, rank_fn)
            expected = ref_bcast([bcast_payload(root)] * size, root)
            assert all(same(r, e) for r, e in zip(results, expected))

    @pytest.mark.parametrize("algorithm", BCAST_ALGORITHMS)
    def test_unsplittable_payload(self, algorithm):
        """Opaque payloads survive ``long``'s scatter via zero-byte fillers."""

        def rank_fn(comm):
            payload = {"pivots": [3, 1, 2], "tag": "opaque"} if comm.rank == 0 else None
            return (yield from comm.bcast(payload, root=0, algorithm=algorithm))

        results = collective(5, rank_fn)
        assert all(same(r, {"pivots": [3, 1, 2], "tag": "opaque"}) for r in results)


class TestCollectiveConformance:
    @pytest.mark.parametrize("size", SIZES)
    def test_gather_every_root(self, size):
        inputs = [("item", r, np.full(r, float(r))) for r in range(size)]
        for root in range(size):

            def rank_fn(comm):
                return (yield from comm.gather(inputs[comm.rank], root=root))

            results = collective(size, rank_fn)
            expected = ref_gather(inputs, root)
            assert all(same(r, e) for r, e in zip(results, expected))

    @pytest.mark.parametrize("size", SIZES)
    def test_scatterv_every_root(self, size):
        for root in range(size):
            # Ragged pieces (the v): rank r's piece has r+1 entries.
            parts = [np.full(r + 1, root * 100.0 + r) for r in range(size)]

            def rank_fn(comm):
                mine = parts if comm.rank == root else None
                return (yield from comm.scatterv(mine, root=root))

            results = collective(size, rank_fn)
            expected = ref_scatterv(parts, root)
            assert all(same(r, e) for r, e in zip(results, expected))

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        inputs = [{"rank": r} for r in range(size)]

        def rank_fn(comm):
            return (yield from comm.allgather(inputs[comm.rank]))

        results = collective(size, rank_fn)
        expected = ref_allgather(inputs)
        assert all(same(r, e) for r, e in zip(results, expected))

    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_non_commutative_every_root(self, size):
        """String concatenation pins MPI's absolute-rank combination order."""
        inputs = [f"[{r}]" for r in range(size)]
        op = lambda a, b: a + b
        for root in range(size):

            def rank_fn(comm):
                return (yield from comm.reduce(inputs[comm.rank], op=op, root=root))

            results = collective(size, rank_fn)
            expected = ref_reduce(inputs, op, root)
            assert results == expected
            assert expected[root] == "".join(inputs)

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_non_commutative(self, size):
        """Both the recursive-doubling (power-of-two) and the gather+bcast
        fallback path must fold in absolute rank order."""
        inputs = [f"[{r}]" for r in range(size)]
        op = lambda a, b: a + b

        def rank_fn(comm):
            return (yield from comm.allreduce(inputs[comm.rank], op=op))

        results = collective(size, rank_fn)
        assert results == ref_allreduce(inputs, op)

    @pytest.mark.parametrize("size", [2, 4, 15])
    def test_barrier_no_early_exit(self, size):
        """No rank leaves the barrier before the last rank has entered."""

        def rank_fn(comm):
            yield comm.sim.timeout(comm.rank * 1e-3)
            entered = comm.sim.now
            yield from comm.barrier()
            return entered, comm.sim.now

        results = collective(size, rank_fn)
        last_entry = max(entered for entered, _ in results)
        assert all(exited >= last_entry for _, exited in results)


class TestSplitConformance:
    @pytest.mark.parametrize("shape", GRID_SHAPES)
    def test_split_by_row_matches_grid_topology(self, shape):
        """``split(color=row, key=col)`` rebuilds exactly the topology-derived
        row communicators of :class:`ProcessGrid`."""
        p, q = shape
        grid = ProcessGrid(p, q)

        def rank_fn(comm):
            row, col = grid.coords(comm.rank)
            group = yield from comm.split(row, key=col)
            return group.members, group.local_rank

        results = collective(p * q, rank_fn)
        for rank, (members, local_rank) in enumerate(results):
            row, col = grid.coords(rank)
            assert members == grid.row_members(row)
            assert local_rank == col

    @pytest.mark.parametrize("shape", GRID_SHAPES)
    def test_split_groups_run_conformant_collectives(self, shape):
        """Column sub-communicators from ``split`` gather per-column payloads
        that match the reference executed per group."""
        p, q = shape
        grid = ProcessGrid(p, q)

        def rank_fn(comm):
            row, col = grid.coords(comm.rank)
            group = yield from comm.split(col, key=row)
            return (yield from group.gather(("cell", row, col), root_local=0))

        results = collective(p * q, rank_fn)
        for col in range(q):
            inputs = [("cell", row, col) for row in range(p)]
            expected = ref_gather(inputs, 0)
            got = [results[grid.rank_of(row, col)] for row in range(p)]
            assert all(same(g, e) for g, e in zip(got, expected))

    def test_split_key_reorders_members(self):
        """A descending key reverses local rank order within each color."""

        def rank_fn(comm):
            group = yield from comm.split(comm.rank % 2, key=-comm.rank)
            return group.members

        results = collective(6, rank_fn)
        assert results[0] == [4, 2, 0]
        assert results[1] == [5, 3, 1]

    def test_split_color_none_is_excluded(self):
        """``color=None`` ranks take part in the exchange but get no group."""

        def rank_fn(comm):
            color = None if comm.rank == 2 else 0
            group = yield from comm.split(color)
            if group is None:
                return None
            return (yield from group.allgather(comm.rank))

        results = collective(4, rank_fn)
        assert results[2] is None
        assert results[0] == results[1] == results[3] == [0, 1, 3]


class TestPayloadRoundtrip:
    """Property-based: any payload the wire model costs travels losslessly
    through every broadcast algorithm (5 ranks: odd, so ``long`` splits
    unevenly and pads with fillers)."""

    @pytest.mark.parametrize("algorithm", BCAST_ALGORITHMS)
    @settings(max_examples=25, deadline=None)
    @given(payload=message_payloads)
    def test_bcast_delivers_identical_payload(self, algorithm, payload):
        def rank_fn(comm):
            mine = payload if comm.rank == 1 else None
            return (yield from comm.bcast(mine, root=1, algorithm=algorithm))

        results = collective(5, rank_fn, with_network=False)
        assert all(same(r, payload) for r in results)


@pytest.mark.slow
class TestLargeGridConformance:
    """The same sweeps at HPL-realistic row widths (4x8 and 8x8 grids)."""

    @pytest.mark.parametrize("size", [32, 64])
    @pytest.mark.parametrize("algorithm", BCAST_ALGORITHMS)
    def test_bcast(self, size, algorithm):
        for root in (0, size // 2, size - 1):
            inputs = [bcast_payload(root) if r == root else None for r in range(size)]

            def rank_fn(comm):
                return (
                    yield from comm.bcast(
                        inputs[comm.rank], root=root, algorithm=algorithm
                    )
                )

            results = collective(size, rank_fn)
            expected = ref_bcast([bcast_payload(root)] * size, root)
            assert all(same(r, e) for r, e in zip(results, expected))

    @pytest.mark.parametrize("size", [32, 64])
    def test_reduce_non_commutative(self, size):
        inputs = [f"[{r}]" for r in range(size)]
        op = lambda a, b: a + b
        for root in (0, 1, size - 1):

            def rank_fn(comm):
                return (yield from comm.reduce(inputs[comm.rank], op=op, root=root))

            assert collective(size, rank_fn) == ref_reduce(inputs, op, root)
