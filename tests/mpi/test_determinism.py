"""Determinism & message-volume regression tests for the simulated MPI.

The DES is seeded and single-threaded, so the *entire* message trace — every
injection and delivery with its virtual timestamp, endpoints, tag and wire
size (``SimMPI(record_log=True)``) — must be byte-identical between two runs
of the same program, and identical again when the run executes inside an
``repro.exec`` pool worker (fork/spawn must not leak nondeterminism into the
calendar).  Message counts and volumes per broadcast algorithm are pinned as
regression constants: they are the quantities the analytic cost model
charges for, so a silent change here is a silent change to every
full-machine projection.
"""

import numpy as np

from repro.exec import ExecutionPolicy, run_tasks
from repro.hpl.dist import DistributedLU
from repro.hpl.grid import ProcessGrid
from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND
from repro.mpi import BCAST_ALGORITHMS, SimMPI, run_ranks
from repro.sim import Simulator

#: Ranks and payload of the pinned broadcast workload (800-byte panel).
PIN_RANKS = 8
PIN_ROOT = 2
PIN_DOUBLES = 100

#: (messages, bytes) per algorithm for one 800-byte broadcast on 8 ranks.
#: binomial/1ring/1rm deliver the full payload to each of the 7 non-roots;
#: ``long`` scatters 7 pieces (696 B of the 800) then rolls all 8 pieces
#: around the ring for 7 rounds (7 x 800 B) in 8*7 piece messages.
EXPECTED_BCAST_TRAFFIC = {
    "binomial": (7, 5600.0),
    "1ring": (7, 5600.0),
    "1rm": (7, 5600.0),
    "long": (63, 6296.0),
}


def bcast_trace(algo):
    """One traced broadcast+allreduce+barrier program; a picklable worker.

    Returns everything a determinism comparison needs: the full message log,
    the virtual clock, the traffic counters, and the per-rank values.
    """
    sim = Simulator()
    world = SimMPI(
        sim, PIN_RANKS, Interconnect(sim, QDR_INFINIBAND, PIN_RANKS), record_log=True
    )
    payload = np.arange(PIN_DOUBLES, dtype=np.float64)

    def rank_main(comm):
        mine = payload if comm.rank == PIN_ROOT else None
        out = yield from comm.bcast(mine, root=PIN_ROOT, algorithm=algo, tag=("pb", 0))
        total = yield from comm.allreduce(float(np.sum(out)))
        yield from comm.barrier()
        return total

    values = run_ranks(sim, world, rank_main)
    return {
        "log": world.log,
        "elapsed": sim.now,
        "messages": world.messages_sent,
        "bytes": world.bytes_sent,
        "values": values,
    }


def lu_trace(algo):
    """A traced end-to-end distributed LU (2x2 grid); a picklable worker."""
    sim = Simulator()
    grid = ProcessGrid(2, 2)
    world = SimMPI(
        sim, grid.size, Interconnect(sim, QDR_INFINIBAND, grid.size), record_log=True
    )
    lu = DistributedLU(sim, grid, nb=4, world=world, bcast_algorithm=algo)
    a = np.random.default_rng(7).standard_normal((24, 24))
    result = lu.factor(a)
    return {
        "log": world.log,
        "elapsed": result.elapsed,
        "messages": world.messages_sent,
        "bytes": world.bytes_sent,
    }


class TestTraceDeterminism:
    def test_bcast_trace_identical_across_runs(self):
        for algo in BCAST_ALGORITHMS:
            first, second = bcast_trace(algo), bcast_trace(algo)
            assert first == second, f"{algo} trace diverged between runs"
            assert len(first["log"]) == 2 * first["messages"]  # post + dlv each

    def test_lu_trace_identical_across_runs(self):
        for algo in BCAST_ALGORITHMS:
            assert lu_trace(algo) == lu_trace(algo), f"{algo} LU trace diverged"

    def test_trace_identical_under_pool_workers(self):
        """Forked/spawned ``repro.exec`` workers replay the exact same DES:
        the trace a worker produces is the one the parent process produces."""
        calls = [dict(algo=algo) for algo in BCAST_ALGORITHMS]
        pooled = run_tasks(
            bcast_trace, calls, policy=ExecutionPolicy(jobs=2, cache=False)
        )
        inline = [bcast_trace(algo) for algo in BCAST_ALGORITHMS]
        assert pooled == inline

    def test_algorithms_share_values_not_schedules(self):
        """All algorithms agree on the data; their message schedules differ."""
        traces = {algo: bcast_trace(algo) for algo in BCAST_ALGORITHMS}
        values = {algo: t["values"] for algo, t in traces.items()}
        assert len({tuple(v) for v in values.values()}) == 1
        assert traces["binomial"]["log"] != traces["1ring"]["log"]
        assert traces["1ring"]["log"] != traces["1rm"]["log"]
        assert traces["long"]["messages"] > traces["1ring"]["messages"]


class TestTrafficRegression:
    def test_bcast_message_counts_and_volumes(self):
        """The pinned per-algorithm traffic of one 800-byte broadcast."""
        for algo, (messages, volume) in EXPECTED_BCAST_TRAFFIC.items():
            sim = Simulator()
            world = SimMPI(
                sim, PIN_RANKS, Interconnect(sim, QDR_INFINIBAND, PIN_RANKS)
            )
            payload = np.arange(PIN_DOUBLES, dtype=np.float64)

            def rank_main(comm):
                mine = payload if comm.rank == PIN_ROOT else None
                return (
                    yield from comm.bcast(mine, root=PIN_ROOT, algorithm=algo)
                )

            run_ranks(sim, world, rank_main)
            assert world.messages_sent == messages, algo
            assert world.bytes_sent == volume, algo

    def test_long_moves_less_than_double_payload_per_rank(self):
        """``long``'s whole-collective volume stays below 2x payload x (P-1):
        the bandwidth bound that makes it the large-message choice."""
        _, volume = EXPECTED_BCAST_TRAFFIC["long"]
        payload_bytes = PIN_DOUBLES * 8
        assert volume < 2 * payload_bytes * (PIN_RANKS - 1)
