"""Unit tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND
from repro.mpi.comm import SimMPI, payload_nbytes
from repro.sim import Simulator


def make_world(n, with_network=True):
    sim = Simulator()
    network = Interconnect(sim, QDR_INFINIBAND, n) if with_network else None
    return sim, SimMPI(sim, n, network)


def run_ranks(sim, world, rank_fn):
    """Spawn one process per rank running rank_fn(comm) and return results."""
    procs = [sim.process(rank_fn(comm), name=f"rank{comm.rank}") for comm in world.comms()]
    return sim.run(until=sim.all_of(procs))


class TestPayloadNbytes:
    def test_ndarray_real_size(self):
        assert payload_nbytes(np.zeros((10, 10))) == 800.0

    def test_scalars(self):
        assert payload_nbytes(3) == 8.0
        assert payload_nbytes(3.14) == 8.0
        assert payload_nbytes(None) == 8.0

    def test_containers(self):
        assert payload_nbytes((np.zeros(4), np.zeros(6))) == 32 + 48 + 16

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4.0

    def test_fallback(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64.0


class TestPointToPoint:
    def test_send_recv_payload(self):
        sim, world = make_world(2)

        def rank(comm):
            if comm.rank == 0:
                yield from comm.send({"x": 1}, dest=1, tag=7)
                return None
            return (yield from comm.recv(source=0, tag=7))

        results = run_ranks(sim, world, rank)
        assert results[1] == {"x": 1}

    def test_message_timing_includes_bandwidth(self):
        sim, world = make_world(2)
        data = np.zeros(625_000_000 // 8)  # 0.625 GB over 5 GB/s = 0.125 s

        def rank(comm):
            if comm.rank == 0:
                yield from comm.send(data, dest=1)
            else:
                yield from comm.recv(source=0)
                return sim.now

        results = run_ranks(sim, world, rank)
        assert results[1] == pytest.approx(0.125, rel=1e-2)

    def test_tag_matching_out_of_order(self):
        sim, world = make_world(2)

        def rank(comm):
            if comm.rank == 0:
                yield from comm.send("first", dest=1, tag="a")
                yield from comm.send("second", dest=1, tag="b")
            else:
                b = yield from comm.recv(source=0, tag="b")
                a = yield from comm.recv(source=0, tag="a")
                return (a, b)

        results = run_ranks(sim, world, rank)
        assert results[1] == ("first", "second")

    def test_same_tag_fifo_order(self):
        sim, world = make_world(2)

        def rank(comm):
            if comm.rank == 0:
                for i in range(3):
                    yield from comm.send(i, dest=1, tag=0)
            else:
                got = []
                for _ in range(3):
                    got.append((yield from comm.recv(source=0, tag=0)))
                return got

        assert run_ranks(sim, world, rank)[1] == [0, 1, 2]

    def test_recv_blocks_until_send(self):
        sim, world = make_world(2)

        def rank(comm):
            if comm.rank == 0:
                yield sim.timeout(5.0)
                yield from comm.send("late", dest=1)
            else:
                payload = yield from comm.recv(source=0)
                return (payload, sim.now)

        payload, when = run_ranks(sim, world, rank)[1]
        assert payload == "late"
        assert when >= 5.0

    def test_sendrecv_exchange(self):
        sim, world = make_world(2)

        def rank(comm):
            peer = 1 - comm.rank
            other = yield from comm.sendrecv(comm.rank * 10, peer)
            return other

        results = run_ranks(sim, world, rank)
        assert results == [10, 0]

    def test_counters(self):
        sim, world = make_world(2)

        def rank(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(100), dest=1)
            else:
                yield from comm.recv()

        run_ranks(sim, world, rank)
        assert world.messages_sent == 1
        assert world.bytes_sent == 800.0


@pytest.mark.parametrize("algorithm", ["binomial", "ring"])
class TestBcast:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_ranks_receive(self, algorithm, size, root):
        if root >= size:
            pytest.skip("root out of range")
        sim, world = make_world(size)

        def rank(comm):
            payload = "data" if comm.rank == root else None
            result = yield from comm.bcast(payload, root=root, algorithm=algorithm)
            return result

        results = run_ranks(sim, world, rank)
        assert results == ["data"] * size

    def test_array_broadcast(self, algorithm):
        sim, world = make_world(4)
        data = np.arange(100.0)

        def rank(comm):
            payload = data if comm.rank == 0 else None
            out = yield from comm.bcast(payload, root=0, algorithm=algorithm)
            return float(out.sum())

        assert run_ranks(sim, world, rank) == [data.sum()] * 4


class TestBcastTiming:
    def test_binomial_scales_logarithmically(self):
        """log2(P) rounds: 8 ranks ~ 3 serial message times for big payloads."""
        data = np.zeros(5_000_000 // 8)  # 1 ms per hop at 5 GB/s

        def time_bcast(size, algorithm):
            sim, world = make_world(size)

            def rank(comm):
                payload = data if comm.rank == 0 else None
                yield from comm.bcast(payload, root=0, algorithm=algorithm)
                return sim.now

            return max(run_ranks(sim, world, rank))

        t_binomial = time_bcast(8, "binomial")
        t_ring = time_bcast(8, "ring")
        hop = 1e-3
        assert t_binomial == pytest.approx(3 * hop, rel=0.1)
        assert t_ring == pytest.approx(7 * hop, rel=0.1)


class TestCollectives:
    def test_gather(self):
        sim, world = make_world(4)

        def rank(comm):
            return (yield from comm.gather(comm.rank**2, root=0))

        results = run_ranks(sim, world, rank)
        assert results[0] == [0, 1, 4, 9]
        assert results[1:] == [None, None, None]

    @pytest.mark.parametrize("size", [1, 2, 4, 8, 3, 6])
    def test_allreduce_sum(self, size):
        sim, world = make_world(size)

        def rank(comm):
            return (yield from comm.allreduce(comm.rank + 1))

        expected = size * (size + 1) // 2
        assert run_ranks(sim, world, rank) == [expected] * size

    def test_allreduce_max(self):
        sim, world = make_world(4)

        def rank(comm):
            return (yield from comm.allreduce(comm.rank * 2, op=max))

        assert run_ranks(sim, world, rank) == [6, 6, 6, 6]

    def test_barrier_synchronises(self):
        sim, world = make_world(3)

        def rank(comm):
            yield sim.timeout(float(comm.rank))  # stagger arrivals
            yield from comm.barrier()
            return sim.now

        results = run_ranks(sim, world, rank)
        assert min(results) >= 2.0  # nobody leaves before the last arrival

    def test_no_network_world_is_instant(self):
        sim, world = make_world(4, with_network=False)

        def rank(comm):
            yield from comm.barrier()
            return sim.now

        assert max(run_ranks(sim, world, rank)) == 0.0
