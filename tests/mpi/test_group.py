"""Unit tests for rank subgroups (row/column collectives)."""

import pytest

from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND
from repro.mpi.comm import SimMPI
from repro.mpi.group import Group
from repro.sim import Simulator


def make_world(n):
    sim = Simulator()
    return sim, SimMPI(sim, n, Interconnect(sim, QDR_INFINIBAND, n))


def run_ranks(sim, world, members, rank_fn):
    procs = []
    for rank in members:
        comm = world.comm(rank)
        procs.append(sim.process(rank_fn(Group(comm, members)), name=f"g{rank}"))
    return sim.run(until=sim.all_of(procs))


class TestGroupBasics:
    def test_local_rank_mapping(self):
        sim, world = make_world(6)
        group = Group(world.comm(4), [2, 4, 5])
        assert group.size == 3
        assert group.local_rank == 1

    def test_rejects_nonmember(self):
        _, world = make_world(4)
        with pytest.raises(ValueError):
            Group(world.comm(0), [1, 2])

    def test_rejects_duplicates(self):
        _, world = make_world(4)
        with pytest.raises(ValueError):
            Group(world.comm(1), [1, 1, 2])


class TestGroupCollectives:
    @pytest.mark.parametrize("members", [[0], [1, 3], [0, 2, 4], [1, 2, 3, 5]])
    @pytest.mark.parametrize("algorithm", ["binomial", "ring"])
    def test_bcast_within_subset(self, members, algorithm):
        sim, world = make_world(6)

        def body(group):
            payload = "x" if group.local_rank == 0 else None
            out = yield from group.bcast(payload, root_local=0, algorithm=algorithm)
            return out

        results = run_ranks(sim, world, members, body)
        assert results == ["x"] * len(members)

    def test_bcast_nonzero_root(self):
        sim, world = make_world(4)

        def body(group):
            payload = 42 if group.local_rank == 1 else None
            return (yield from group.bcast(payload, root_local=1))

        assert run_ranks(sim, world, [0, 1, 2, 3], body) == [42] * 4

    def test_gather(self):
        sim, world = make_world(5)
        members = [1, 2, 4]

        def body(group):
            return (yield from group.gather(group.local_rank * 10, root_local=0))

        results = run_ranks(sim, world, members, body)
        assert results[0] == [0, 10, 20]
        assert results[1] is None and results[2] is None

    def test_point_to_point(self):
        sim, world = make_world(4)
        members = [0, 3]

        def body(group):
            if group.local_rank == 0:
                yield from group.send("hello", dest_local=1)
                return None
            return (yield from group.recv(source_local=0))

        assert run_ranks(sim, world, members, body)[1] == "hello"

    def test_two_groups_do_not_interfere(self):
        """Column groups in a grid run the same collective concurrently."""
        sim, world = make_world(4)
        results = {}

        def body(group, key):
            payload = key if group.local_rank == 0 else None
            out = yield from group.bcast(payload, root_local=0)
            results.setdefault(key, []).append(out)

        procs = []
        for members, key in [([0, 1], "left"), ([2, 3], "right")]:
            for rank in members:
                group = Group(world.comm(rank), members, tag_space=("col", key))
                procs.append(sim.process(body(group, key)))
        sim.run(until=sim.all_of(procs))
        assert results == {"left": ["left", "left"], "right": ["right", "right"]}
