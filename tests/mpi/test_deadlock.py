"""Deadlock diagnostics: mismatched collectives name their stuck ranks.

A drained calendar with ranks suspended inside a collective is the simulated
analogue of a hung MPI job.  :func:`repro.mpi.run_ranks` must convert the
engine's generic drained-calendar error into a
:class:`~repro.mpi.CollectiveDeadlockError` that says *which* ranks are
stuck in *which* collective on *which* tag — the information a real hang
makes you attach a debugger to recover.
"""

import pytest

from repro.machine.interconnect import Interconnect
from repro.machine.presets import QDR_INFINIBAND
from repro.mpi import CollectiveDeadlockError, SimMPI, run_ranks
from repro.sim import Simulator


def make_world(n):
    sim = Simulator()
    return sim, SimMPI(sim, n, Interconnect(sim, QDR_INFINIBAND, n))


class TestDeadlockDiagnostics:
    def test_missing_gather_participant_names_the_root(self):
        """Rank 3 skips the gather; the root starves waiting for its item."""
        sim, world = make_world(4)

        def rank_main(comm):
            if comm.rank == 3:
                return None  # forgets to participate
            return (yield from comm.gather(comm.rank, root=0))

        with pytest.raises(CollectiveDeadlockError) as excinfo:
            run_ranks(sim, world, rank_main)
        message = str(excinfo.value)
        assert "rank 0 in gather" in message
        assert "__gather__" in message
        # Ranks 1 and 2 sent and left the collective cleanly.
        assert "rank 1" not in message and "rank 2" not in message

    def test_skipped_split_blocks_everyone_in_the_exchange(self):
        """``split`` is collective: one rank not calling it hangs the rest
        inside the color/key allgather, and the diagnosis says so."""
        sim, world = make_world(4)

        def rank_main(comm):
            if comm.rank == 3:
                return None  # never calls split
            group = yield from comm.split(comm.rank % 2)
            return group.members

        with pytest.raises(CollectiveDeadlockError) as excinfo:
            run_ranks(sim, world, rank_main)
        message = str(excinfo.value)
        for rank in (0, 1, 2):
            assert f"rank {rank} in allgather" in message
        assert "__split__" in message

    def test_mismatched_split_color_deadlocks_downstream_collective(self):
        """The satellite scenario: ranks pair up by ``rank % 2`` but rank 2
        passes the wrong color, landing in {1, 2, 3} instead of {0, 2}.  The
        split itself completes — membership is consistent, just not what the
        program *believes* — so the hang appears one collective later, when
        rank 2 broadcasts on a group whose other members never will."""
        sim, world = make_world(4)

        def rank_main(comm):
            intended = comm.rank % 2
            color = 1 if comm.rank == 2 else intended  # the typo
            group = yield from comm.split(color)
            if intended == 0:
                # The "even" protocol: the group leader broadcasts a token.
                token = "go" if group.local_rank == 0 else None
                return (yield from group.bcast(token, root_local=0))
            return group.members

        with pytest.raises(CollectiveDeadlockError) as excinfo:
            run_ranks(sim, world, rank_main)
        message = str(excinfo.value)
        assert "rank 2 in bcast" in message
        assert "rank 0" not in message  # alone in its group: size-1 bcast returns

    def test_mismatched_tags_within_a_collective(self):
        """Two halves of the world enter the same collective under different
        tags; both sides starve and both tags appear in the diagnosis."""
        sim, world = make_world(4)

        def rank_main(comm):
            tag = "epoch-a" if comm.rank < 2 else "epoch-b"
            return (yield from comm.allgather(comm.rank, tag=tag))

        with pytest.raises(CollectiveDeadlockError) as excinfo:
            run_ranks(sim, world, rank_main)
        message = str(excinfo.value)
        assert "epoch-a" in message and "epoch-b" in message
        for rank in range(4):
            assert f"rank {rank} in allgather" in message

    def test_bookkeeping_is_clean_after_success(self):
        """A completed program leaves no rank marked as in-collective."""
        sim, world = make_world(4)

        def rank_main(comm):
            yield from comm.barrier()
            group = yield from comm.split(comm.rank // 2)
            return (yield from group.allgather(comm.rank))

        results = run_ranks(sim, world, rank_main)
        assert results == [[0, 1], [0, 1], [2, 3], [2, 3]]
        assert world.blocked_collectives() == {}

    def test_non_collective_deadlock_stays_generic(self):
        """A plain point-to-point starvation is not dressed up as a
        collective deadlock — the engine's own error propagates."""
        from repro.sim import SimulationError

        sim, world = make_world(2)

        def rank_main(comm):
            if comm.rank == 0:
                return (yield from comm.recv(source=1, tag="never-sent"))
            return None

        with pytest.raises(SimulationError) as excinfo:
            run_ranks(sim, world, rank_main)
        assert not isinstance(excinfo.value, CollectiveDeadlockError)
