"""Wire-size model tests: every payload type ``payload_nbytes`` costs.

Message volumes drive the alpha-beta timing of every collective, so the
size model is part of the simulation's numerical contract: arrays must cost
their true ``nbytes`` (including zero), containers their contents plus
framing, and the ``long`` broadcast's zero-byte filler pieces exactly
nothing — otherwise padding an unsplittable payload would change timings.
"""

from dataclasses import dataclass

import numpy as np

from repro.mpi.bcast import FILLER, join_payload, split_payload
from repro.mpi.comm import payload_nbytes


class TestArrays:
    def test_true_nbytes(self):
        assert payload_nbytes(np.zeros((10, 10))) == 800.0
        assert payload_nbytes(np.zeros(3, dtype=np.float32)) == 12.0
        assert payload_nbytes(np.zeros(5, dtype=np.uint8)) == 5.0

    def test_zero_byte_arrays_are_free(self):
        assert payload_nbytes(np.empty(0)) == 0.0
        assert payload_nbytes(np.empty((0, 7))) == 0.0


class TestScalars:
    def test_every_scalar_costs_eight(self):
        for value in (0, -3, 3.14, True, False, None, np.int64(9), np.float64(2.5), np.bool_(True)):
            assert payload_nbytes(value) == 8.0

    def test_bytes_and_strings_cost_length(self):
        assert payload_nbytes(b"") == 0.0
        assert payload_nbytes(b"abcd") == 4.0
        assert payload_nbytes(bytearray(b"xyz")) == 3.0
        assert payload_nbytes("hello") == 5.0


class TestContainers:
    def test_tuple_and_list_add_framing(self):
        assert payload_nbytes((np.zeros(4), np.zeros(6))) == 32 + 48 + 16
        assert payload_nbytes([1, 2, 3]) == 3 * 8.0 + 16
        assert payload_nbytes(()) == 16.0

    def test_dict_costs_keys_values_and_framing(self):
        assert payload_nbytes({}) == 0.0
        assert payload_nbytes({"ab": 1}) == 2.0 + 8.0 + 16.0
        assert payload_nbytes({"r": np.zeros(2)}) == 1.0 + 16.0 + 16.0

    def test_nesting_recurses(self):
        inner = (np.zeros(2), 1)  # 16 + 8 + 16
        assert payload_nbytes([inner, inner]) == 2 * 40.0 + 16.0


class TestDataclassesAndOverrides:
    def test_dataclass_costed_field_by_field(self):
        @dataclass
        class Panel:
            data: np.ndarray
            jb: int

        assert payload_nbytes(Panel(np.zeros(4), 3)) == 32.0 + 8.0 + 16.0 * 2

    def test_dataclass_type_itself_falls_back(self):
        @dataclass
        class Panel:
            jb: int

        assert payload_nbytes(Panel) == 64.0  # the class, not an instance

    def test_wire_nbytes_attribute_pins_the_size(self):
        class Pinned:
            wire_nbytes = 42.0

        assert payload_nbytes(Pinned()) == 42.0

    def test_callable_wire_nbytes_is_ignored(self):
        class Tricky:
            def wire_nbytes(self):  # a method, not a declared size
                return 1.0

        assert payload_nbytes(Tricky()) == 64.0

    def test_filler_is_free(self):
        assert payload_nbytes(FILLER) == 0.0

    def test_opaque_object_fallback(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64.0


class TestSplitJoinVolume:
    def test_array_split_conserves_volume_and_values(self):
        payload = np.arange(100, dtype=np.float64)
        pieces = split_payload(payload, 8)
        assert sum(payload_nbytes(p) for p in pieces) == payload_nbytes(payload)
        assert np.array_equal(join_payload(pieces), payload)

    def test_ragged_split_pads_with_empty_pieces(self):
        pieces = split_payload(np.arange(3, dtype=np.float64), 5)
        assert [len(p) for p in pieces] == [1, 1, 1, 0, 0]
        assert payload_nbytes(pieces[-1]) == 0.0

    def test_unsplittable_payload_pads_with_fillers(self):
        pieces = split_payload({"pivots": [1, 2]}, 4)
        assert pieces[0] == {"pivots": [1, 2]}
        assert all(p is FILLER for p in pieces[1:])
        assert sum(payload_nbytes(p) for p in pieces) == payload_nbytes(pieces[0])
        assert join_payload(pieces) == {"pivots": [1, 2]}

    def test_tuple_splits_elementwise(self):
        payload = (np.arange(10, dtype=np.float64), b"tag")
        pieces = split_payload(payload, 3)
        assert all(isinstance(p, tuple) and len(p) == 2 for p in pieces)
        joined = join_payload(pieces)
        assert np.array_equal(joined[0], payload[0]) and joined[1] == b"tag"
